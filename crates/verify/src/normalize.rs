//! Normalization of symbolic expressions to a polynomial normal form.
//!
//! The paper's verification flow compares RT-level descriptions with more
//! abstract ones through "a computer algebra simplification tool" (the
//! cited Arditi & Collavizza approach) — i.e. by normalizing both sides.
//! We normalize the ring fragment (`add`, `sub`, `neg`, `mul`, `shl` by
//! constants, pass-throughs) into multivariate polynomials over **atoms**;
//! everything else (shifts by variables, min/max, CORDIC operations, …)
//! becomes an opaque atom whose arguments are normalized recursively.
//! Arithmetic is carried out in wrapping `i64`, the same ring the
//! simulated datapath computes in, so the normalization is sound for
//! equivalence checking.

use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use clockless_core::Op;

use crate::symbolic::Expr;

/// A monomial: atoms with their powers (empty = the constant monomial).
type Monomial = BTreeMap<Atom, u32>;

/// An atom: a variable or an opaque operation over normalized arguments.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Atom {
    /// A symbolic variable.
    Var(String),
    /// An opaque operation (not in the polynomial fragment) applied to
    /// normalized arguments.
    Opaque(Op, Vec<Poly>),
}

/// A multivariate polynomial in normal form: a map from monomials to
/// (wrapping `i64`) coefficients; zero coefficients are never stored.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, i64>,
}

/// Term-count bound beyond which products stop being expanded and become
/// opaque atoms instead (keeps pathological expressions tractable).
const TERM_LIMIT: usize = 4096;

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i64) -> Poly {
        let mut p = Poly::zero();
        if c != 0 {
            p.terms.insert(Monomial::new(), c);
        }
        p
    }

    /// A single-atom polynomial.
    pub fn atom(a: Atom) -> Poly {
        let mut m = Monomial::new();
        m.insert(a, 1);
        let mut p = Poly::zero();
        p.terms.insert(m, 1);
        p
    }

    /// `true` if this is a constant (possibly zero).
    pub fn as_constant(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => self.terms.get(&Monomial::new()).copied(),
            _ => None,
        }
    }

    /// Number of terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    fn add_term(&mut self, m: Monomial, c: i64) {
        let e = self.terms.entry(m).or_insert(0);
        *e = e.wrapping_add(c);
        if *e == 0 {
            // Remove the zero entry to keep the form canonical.
            let key: Vec<Monomial> = self
                .terms
                .iter()
                .filter(|(_, &v)| v == 0)
                .map(|(k, _)| k.clone())
                .collect();
            for k in key {
                self.terms.remove(&k);
            }
        }
    }

    /// Sum of two polynomials (wrapping coefficients).
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            out.add_term(m.clone(), *c);
        }
        out
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            out.add_term(m.clone(), c.wrapping_neg());
        }
        out
    }

    /// Difference.
    pub fn sub(&self, other: &Poly) -> Poly {
        self.add(&other.neg())
    }

    /// Product; `None` when the result would exceed the term limit.
    pub fn mul(&self, other: &Poly) -> Option<Poly> {
        if self.terms.len().saturating_mul(other.terms.len()) > TERM_LIMIT {
            return None;
        }
        let mut out = Poly::zero();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m = m1.clone();
                for (a, p) in m2 {
                    *m.entry(a.clone()).or_insert(0) += p;
                }
                out.add_term(m, c1.wrapping_mul(*c2));
            }
        }
        if out.terms.len() > TERM_LIMIT {
            None
        } else {
            Some(out)
        }
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            write!(f, "{c}")?;
            for (a, p) in m {
                match a {
                    Atom::Var(v) => write!(f, "·{v}")?,
                    Atom::Opaque(op, args) => {
                        write!(f, "·{op}(")?;
                        for (i, arg) in args.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{arg}")?;
                        }
                        write!(f, ")")?;
                    }
                }
                if *p > 1 {
                    write!(f, "^{p}")?;
                }
            }
        }
        Ok(())
    }
}

/// Normalizes an expression into polynomial normal form.
pub fn normalize(e: &Expr) -> Poly {
    match e {
        Expr::Const(c) => Poly::constant(*c),
        Expr::Var(v) => Poly::atom(Atom::Var(v.clone())),
        Expr::Apply(op, args) => {
            let norm: Vec<Poly> = args.iter().map(|a| normalize(a)).collect();
            match (op, norm.as_slice()) {
                (Op::Add, [a, b]) => a.add(b),
                (Op::Sub, [a, b]) => a.sub(b),
                (Op::Neg, [a]) => a.neg(),
                (Op::PassA, [a]) | (Op::PassB, [a]) => a.clone(),
                (Op::Mul, [a, b]) => match a.mul(b) {
                    Some(p) => p,
                    None => Poly::atom(Atom::Opaque(*op, norm.clone())),
                },
                (Op::Shl, [a, b]) => {
                    // Left shift by a constant is multiplication by 2^k.
                    if let Some(k) = b.as_constant() {
                        if (0..63).contains(&k) {
                            if let Some(p) = a.mul(&Poly::constant(1i64 << k)) {
                                return p;
                            }
                        }
                    }
                    Poly::atom(Atom::Opaque(*op, norm.clone()))
                }
                _ => Poly::atom(Atom::Opaque(*op, norm.clone())),
            }
        }
    }
}

/// `true` when the two expressions normalize to the same polynomial.
///
/// A `true` answer is a proof of equivalence over wrapping `i64`
/// arithmetic; a `false` answer may be a false negative when opaque
/// operations are involved (use random concrete testing as a fallback).
pub fn equivalent(a: &Rc<Expr>, b: &Rc<Expr>) -> bool {
    normalize(a) == normalize(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Rc<Expr> {
        Expr::var(n)
    }
    fn apply(op: Op, args: Vec<Rc<Expr>>) -> Rc<Expr> {
        Expr::apply(op, args).expect("no illegal constants in tests")
    }

    #[test]
    fn commutativity_of_addition() {
        let ab = apply(Op::Add, vec![v("a"), v("b")]);
        let ba = apply(Op::Add, vec![v("b"), v("a")]);
        assert!(equivalent(&ab, &ba));
    }

    #[test]
    fn distributivity() {
        // (a+b)*c == a*c + b*c
        let lhs = apply(Op::Mul, vec![apply(Op::Add, vec![v("a"), v("b")]), v("c")]);
        let rhs = apply(
            Op::Add,
            vec![
                apply(Op::Mul, vec![v("a"), v("c")]),
                apply(Op::Mul, vec![v("b"), v("c")]),
            ],
        );
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn subtraction_cancels() {
        // (a + b) - b == a
        let lhs = apply(Op::Sub, vec![apply(Op::Add, vec![v("a"), v("b")]), v("b")]);
        assert!(equivalent(&lhs, &v("a")));
    }

    #[test]
    fn neg_is_sub_from_zero() {
        let lhs = apply(Op::Neg, vec![v("x")]);
        let rhs = apply(Op::Sub, vec![Expr::constant(0), v("x")]);
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn shl_by_constant_is_scaling() {
        let lhs = apply(Op::Shl, vec![v("x"), Expr::constant(3)]);
        let rhs = apply(Op::Mul, vec![v("x"), Expr::constant(8)]);
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn different_polynomials_differ() {
        let a = apply(Op::Mul, vec![v("a"), v("a")]);
        let b = apply(Op::Mul, vec![v("a"), v("b")]);
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn opaque_operations_compare_structurally() {
        let a = apply(Op::Min, vec![v("x"), v("y")]);
        let b = apply(Op::Min, vec![v("x"), v("y")]);
        let c = apply(Op::Min, vec![v("y"), v("x")]);
        assert!(equivalent(&a, &b));
        // Min is commutative but opaque: structural comparison misses it
        // (documented false negative).
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn opaque_arguments_are_normalized() {
        // min(a+b, c) == min(b+a, c): the arguments normalize.
        let a = apply(Op::Min, vec![apply(Op::Add, vec![v("a"), v("b")]), v("c")]);
        let b = apply(Op::Min, vec![apply(Op::Add, vec![v("b"), v("a")]), v("c")]);
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn wrapping_soundness() {
        // (i64::MAX + 1) ≡ i64::MIN in the wrapping ring.
        let lhs = apply(Op::Add, vec![Expr::constant(i64::MAX), Expr::constant(1)]);
        assert_eq!(normalize(&lhs).as_constant(), Some(i64::MIN));
    }

    #[test]
    fn pass_through_is_identity() {
        let lhs = apply(Op::PassA, vec![v("q")]);
        assert!(equivalent(&lhs, &v("q")));
    }

    #[test]
    fn zero_constant_is_canonical() {
        let z1 = Poly::constant(0);
        let z2 = Poly::zero();
        assert_eq!(z1, z2);
        let diff = normalize(&apply(Op::Sub, vec![v("a"), v("a")]));
        assert_eq!(diff, Poly::zero());
        assert_eq!(diff.as_constant(), Some(0));
    }
}
