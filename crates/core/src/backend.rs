//! Pluggable execution backends: one semantics, two engines.
//!
//! An [`ExecBackend`] turns an [`RtModel`] into its observable run output
//! — final registers, conflict diagnoses, kernel-compatible statistics,
//! commit log and waveform. Two engines implement the contract:
//!
//! * [`InterpretedBackend`] — the delta-cycle event kernel
//!   ([`RtSimulation`]): processes, sensitivity lists, wake filters. This
//!   is the faithful rendering of the paper's VHDL construction.
//! * [`CompiledBackend`] — the phase-schedule engine
//!   ([`ExecPlan`]): the model is lowered to dense
//!   per-`(step, phase)` action tables and walked in a fixed number of
//!   iterations with no event machinery at all, exploiting the paper's
//!   central observation that six-phase delta timing makes the schedule
//!   *static*.
//!
//! Both backends produce **byte-identical observable output** (registers,
//! conflicts with exact step and phase, trace/VCD, `SimStats`); the
//! differential obligation is enforced by `clockless-verify`'s
//! `backend_equiv` over the whole corpus.
//!
//! # Examples
//!
//! ```
//! use clockless_core::backend::{Backend, ExecOptions};
//! use clockless_core::model::fig1_model;
//! use clockless_core::value::Value;
//!
//! let model = fig1_model(3, 4);
//! let interp = Backend::Interpreted.execute(&model, &ExecOptions::traced())?;
//! let compiled = Backend::Compiled.execute(&model, &ExecOptions::traced())?;
//! assert_eq!(interp.summary.register("R1"), Some(Value::Num(7)));
//! assert_eq!(interp.summary.registers, compiled.summary.registers);
//! assert_eq!(interp.summary.stats, compiled.summary.stats);
//! assert_eq!(interp.vcd, compiled.vcd);
//! # Ok::<(), clockless_kernel::KernelError>(())
//! ```

use std::fmt;
use std::str::FromStr;
use std::time::Instant;

use clockless_kernel::{KernelError, SimStats};

use crate::diag::Conflict;
use crate::elaborate::ElaborateOptions;
use crate::model::RtModel;
use crate::plan::ExecPlan;
use crate::run::{RegisterCommit, RtSimulation, RunSummary};
use crate::value::Value;

/// Optimization level of the compiled engine's plan optimizer
/// ([`crate::opt`]).
///
/// The levels are strictly cumulative pipelines over the lowered
/// [`ExecPlan`]; every level produces **byte-identical observables** to
/// `O0` and to the interpreter — the optimizer only ever changes how the
/// schedule is walked, never what it computes. The interpreted backend
/// ignores the level entirely.
///
/// # Examples
///
/// ```
/// use clockless_core::backend::OptLevel;
///
/// let o: OptLevel = "2".parse()?;
/// assert_eq!(o, OptLevel::O2);
/// assert_eq!(o.to_string(), "2");
/// assert_eq!(OptLevel::default(), OptLevel::O2);
/// # Ok::<(), clockless_core::backend::ParseOptLevelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// No optimization: interpret the generic per-`(step, phase)` action
    /// tables exactly as [`ExecPlan::execute`] does.
    O0,
    /// Slot fusion + resolution specialization: one contiguous micro-op
    /// stream with precomputed delta boundaries; single-driver asserts
    /// compile to direct stores that skip `resolve()` and the driver
    /// buffers.
    O1,
    /// Everything in `O1` plus control-trajectory constant folding and
    /// dead-spur elimination (statically decided guards, elided control
    /// bookkeeping and provably event-free module/commit evaluations,
    /// with their counter contributions credited analytically).
    #[default]
    O2,
}

impl OptLevel {
    /// All levels, lowest first — the sweep order equivalence gates use.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// The per-pass toggle set this level enables.
    pub fn config(self) -> OptConfig {
        match self {
            OptLevel::O0 => OptConfig {
                fuse: false,
                specialize: false,
                fold: false,
                dse: false,
            },
            OptLevel::O1 => OptConfig {
                fuse: true,
                specialize: true,
                fold: false,
                dse: false,
            },
            OptLevel::O2 => OptConfig {
                fuse: true,
                specialize: true,
                fold: true,
                dse: true,
            },
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptLevel::O0 => "0",
            OptLevel::O1 => "1",
            OptLevel::O2 => "2",
        })
    }
}

/// Error parsing an [`OptLevel`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOptLevelError(pub String);

impl fmt::Display for ParseOptLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown opt level `{}` (expected 0|1|2)", self.0)
    }
}

impl std::error::Error for ParseOptLevelError {}

impl FromStr for OptLevel {
    type Err = ParseOptLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "0" => Ok(OptLevel::O0),
            "1" => Ok(OptLevel::O1),
            "2" => Ok(OptLevel::O2),
            other => Err(ParseOptLevelError(other.to_string())),
        }
    }
}

/// Individual pass toggles of the optimizer pipeline.
///
/// [`OptLevel::config`] maps the user-facing levels onto these; the
/// benchmarks flip passes one at a time for per-pass attribution.
/// `fuse` is the carrier pass — the others rewrite the fused stream, so
/// they are only meaningful when `fuse` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptConfig {
    /// Slot fusion: flatten the `(step, phase)` action tables into one
    /// contiguous micro-op stream with precomputed delta boundaries.
    pub fuse: bool,
    /// Resolution specialization: single-driver asserts become direct
    /// compare-and-store, skipping `resolve()` and the driver buffers.
    pub specialize: bool,
    /// Control-trajectory constant folding: the CS/PH trajectory is
    /// static, so statically decided guards are pre-evaluated and
    /// untraced control bookkeeping is elided (credited analytically).
    pub fold: bool,
    /// Dead-spur elimination: module evaluations and register/memory
    /// commits that provably observe only `DISC` are dropped from the
    /// stream.
    pub dse: bool,
}

/// Options for one backend execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Record the full waveform. Required for conflict localization, the
    /// commit log and VCD export; costs memory and time.
    pub trace: bool,
    /// Per-instant delta-cycle budget; `None` uses the kernel default
    /// (10^8). Exceeding it fails the run with
    /// [`KernelError::DeltaOverflow`].
    pub delta_limit: Option<u64>,
    /// Wall-clock deadline; passing it fails the run with
    /// [`KernelError::WallBudgetExceeded`]. Checked after every delta
    /// cycle by both backends.
    pub deadline: Option<Instant>,
    /// Optimization level of the compiled engine (default `O2`). The
    /// interpreted backend ignores it; every level is observably
    /// byte-identical, so this only trades compile time for run time.
    pub opt: OptLevel,
}

impl ExecOptions {
    /// Options with tracing enabled.
    pub fn traced() -> ExecOptions {
        ExecOptions {
            trace: true,
            ..Default::default()
        }
    }

    /// These options with the given optimization level.
    pub fn at_opt(self, opt: OptLevel) -> ExecOptions {
        ExecOptions { opt, ..self }
    }
}

/// The complete observable output of one model execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Run summary: kernel statistics, final registers and (when traced)
    /// the conflict report.
    pub summary: RunSummary,
    /// The register-commit log (`None` when not traced).
    pub commits: Option<Vec<RegisterCommit>>,
    /// The waveform as a VCD document (`None` when not traced).
    pub vcd: Option<String>,
}

/// Per-column result of [`ExecPlan::execute_batch`]: exactly the
/// observables a fault-campaign classifier needs, without the solo
/// engines' trace/VCD machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Final register values, in declaration order.
    pub registers: Vec<(String, Value)>,
    /// The run's first `ILLEGAL` transition, localized like the traced
    /// engines' conflict report (`ConflictReport::first`).
    pub first_conflict: Option<Conflict>,
    /// The column's kernel counters — identical to the stats a solo run
    /// of the same mutant reports.
    pub stats: SimStats,
    /// The column's schedule exceeded the delta budget: nothing ran, and
    /// `stats` records only the exhausted budget as `delta_cycles`.
    pub overflowed: bool,
    /// Check verdict when the batch ran with value checkers
    /// ([`ExecPlan::execute_batch_checked`]); `None` on unchecked runs
    /// and on overflowed columns (which never execute).
    pub check: Option<crate::check::CheckReport>,
}

/// An execution engine for clock-free RT models.
///
/// Implementations must agree byte-for-byte on every field of
/// [`ExecOutcome`] for every valid model — the equivalence
/// `clockless-verify` checks differentially.
pub trait ExecBackend {
    /// Short lowercase name of the engine (`"interpreted"`,
    /// `"compiled"`).
    fn label(&self) -> &'static str;

    /// Runs `model` to quiescence and harvests the observable output.
    ///
    /// # Errors
    ///
    /// [`KernelError::DeltaOverflow`] when the delta budget is exceeded,
    /// [`KernelError::WallBudgetExceeded`] when the wall deadline passes,
    /// plus any elaboration error.
    fn execute(&self, model: &RtModel, options: &ExecOptions) -> Result<ExecOutcome, KernelError>;
}

/// The delta-cycle event-kernel engine (the paper's VHDL semantics,
/// executed by `clockless-kernel`).
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpretedBackend;

impl ExecBackend for InterpretedBackend {
    fn label(&self) -> &'static str {
        "interpreted"
    }

    fn execute(&self, model: &RtModel, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        let elaborate = ElaborateOptions {
            trace: options.trace,
            ..Default::default()
        };
        let mut sim = RtSimulation::with_options(model, elaborate)?;
        if let Some(limit) = options.delta_limit {
            sim.set_delta_limit(limit);
        }
        let summary = match options.deadline {
            Some(deadline) => sim.run_to_completion_deadlined(deadline)?,
            None => sim.run_to_completion()?,
        };
        Ok(ExecOutcome {
            summary,
            commits: sim.register_commits(),
            vcd: sim.to_vcd(),
        })
    }
}

/// The compiled phase-schedule engine: lowers the model to an
/// [`ExecPlan`] and walks the dense slot tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledBackend;

impl ExecBackend for CompiledBackend {
    fn label(&self) -> &'static str {
        "compiled"
    }

    fn execute(&self, model: &RtModel, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        let plan = ExecPlan::lower(model);
        match options.opt {
            OptLevel::O0 => plan.execute(options),
            level => crate::opt::OptPlan::from_plan(plan, level.config()).execute(options),
        }
    }
}

/// A backend selector — the value CLI flags and `.fleet` specs carry.
///
/// # Examples
///
/// ```
/// use clockless_core::backend::Backend;
///
/// let b: Backend = "compiled".parse()?;
/// assert_eq!(b, Backend::Compiled);
/// assert_eq!(b.to_string(), "compiled");
/// assert_eq!(Backend::default(), Backend::Interpreted);
/// # Ok::<(), clockless_core::backend::ParseBackendError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The delta-cycle event kernel ([`InterpretedBackend`]).
    #[default]
    Interpreted,
    /// The compiled phase-schedule engine ([`CompiledBackend`]).
    Compiled,
}

impl Backend {
    /// The engine implementing this selector.
    pub fn backend(self) -> &'static dyn ExecBackend {
        match self {
            Backend::Interpreted => &InterpretedBackend,
            Backend::Compiled => &CompiledBackend,
        }
    }

    /// Short lowercase name (`"interpreted"` / `"compiled"`).
    pub fn label(self) -> &'static str {
        self.backend().label()
    }

    /// Runs `model` on the selected engine
    /// (shorthand for `self.backend().execute(model, options)`).
    ///
    /// # Errors
    ///
    /// See [`ExecBackend::execute`].
    pub fn execute(
        self,
        model: &RtModel,
        options: &ExecOptions,
    ) -> Result<ExecOutcome, KernelError> {
        self.backend().execute(model, options)
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error parsing a [`Backend`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backend `{}` (expected interpreted|compiled)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for Backend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "interpreted" => Ok(Backend::Interpreted),
            "compiled" => Ok(Backend::Compiled),
            other => Err(ParseBackendError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;
    use crate::value::Value;

    #[test]
    fn parse_and_display_roundtrip() {
        for b in [Backend::Interpreted, Backend::Compiled] {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        assert_eq!("COMPILED".parse::<Backend>().unwrap(), Backend::Compiled);
        let err = "jit".parse::<Backend>().unwrap_err();
        assert!(err.to_string().contains("jit"));
    }

    #[test]
    fn labels_match_selectors() {
        assert_eq!(Backend::Interpreted.label(), "interpreted");
        assert_eq!(Backend::Compiled.label(), "compiled");
    }

    #[test]
    fn untraced_outcome_has_no_waveform_artifacts() {
        let model = fig1_model(1, 2);
        for b in [Backend::Interpreted, Backend::Compiled] {
            let out = b.execute(&model, &ExecOptions::default()).unwrap();
            assert_eq!(out.summary.register("R1"), Some(Value::Num(3)), "{b}");
            assert!(out.summary.conflicts.is_none(), "{b}");
            assert!(out.commits.is_none(), "{b}");
            assert!(out.vcd.is_none(), "{b}");
        }
    }

    #[test]
    fn both_backends_respect_the_wall_deadline() {
        let model = fig1_model(3, 4);
        let past = Instant::now() - std::time::Duration::from_secs(1);
        for b in [Backend::Interpreted, Backend::Compiled] {
            let opts = ExecOptions {
                deadline: Some(past),
                ..Default::default()
            };
            let err = b.execute(&model, &opts).unwrap_err();
            assert!(
                matches!(err, KernelError::WallBudgetExceeded { .. }),
                "{b}: {err}"
            );
        }
    }
}
