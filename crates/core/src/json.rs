//! Shared hand-rolled JSON rendering helpers.
//!
//! Every machine-readable surface in the workspace (fleet reports, fault
//! campaigns, the serve daemon) writes JSON by hand so tier-1 resolves
//! with zero external crates. This module centralizes the two renderings
//! that must agree byte-for-byte across those surfaces — string escaping
//! and the flat [`SimStats`] counter object — plus the deterministic
//! single-run report the CLI's `run --json` and the daemon's `run` job
//! both print.
//!
//! # Examples
//!
//! ```
//! use clockless_core::json::escape;
//!
//! assert_eq!(escape("plain"), "plain");
//! assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
//! ```

use std::fmt::Write as _;

use clockless_kernel::SimStats;

use crate::model::RtModel;
use crate::run::RunSummary;

/// Escapes a string for inclusion in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders [`SimStats`] as a flat JSON object. Every counter is emitted
/// explicitly — including zeros — so downstream diffing sees a
/// value-independent key set.
///
/// # Examples
///
/// ```
/// use clockless_core::json::sim_stats;
/// use clockless_kernel::SimStats;
///
/// let j = sim_stats(&SimStats::default());
/// assert!(j.starts_with("{\"delta_cycles\": 0"));
/// assert!(j.contains("\"retries\": 0"));
/// ```
pub fn sim_stats(s: &SimStats) -> String {
    format!(
        "{{\"delta_cycles\": {}, \"process_activations\": {}, \"events\": {}, \
         \"driver_updates\": {}, \"time_advances\": {}, \"wake_filter_hits\": {}, \
         \"wake_filter_misses\": {}, \"peak_runnable\": {}, \"peak_pending_updates\": {}, \
         \"injected_faults\": {}, \"retries\": {}}}",
        s.delta_cycles,
        s.process_activations,
        s.events,
        s.driver_updates,
        s.time_advances,
        s.wake_filter_hits,
        s.wake_filter_misses,
        s.peak_runnable,
        s.peak_pending_updates,
        s.injected_faults,
        s.retries
    )
}

/// Renders one traced run as the deterministic JSON document printed by
/// `clockless run --json` — and, byte-identically, returned by the serve
/// daemon's `run` job. No wall-clock fields; identical runs produce
/// identical documents on any machine.
///
/// # Examples
///
/// ```
/// use clockless_core::backend::{Backend, ExecOptions};
/// use clockless_core::json::run_report;
/// use clockless_core::model::fig1_model;
///
/// let model = fig1_model(3, 4);
/// let outcome = Backend::Interpreted.execute(&model, &ExecOptions::traced())?;
/// let doc = run_report(&model, &outcome.summary);
/// assert!(doc.contains("\"model\": \"fig1_example\""));
/// assert!(doc.contains("{\"name\": \"R1\", \"value\": \"7\"}"));
/// # Ok::<(), clockless_kernel::KernelError>(())
/// ```
pub fn run_report(model: &RtModel, summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"run\": {{\"model\": \"{}\", \"cs_max\": {}, \"tuples\": {}}},",
        escape(model.name()),
        model.cs_max(),
        model.tuples().len()
    );
    let _ = writeln!(out, "  \"kernel\": {},", sim_stats(&summary.stats));
    out.push_str("  \"registers\": [");
    for (k, (name, value)) in summary.registers.iter().enumerate() {
        let comma = if k + 1 == summary.registers.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(
            out,
            "{{\"name\": \"{}\", \"value\": \"{}\"}}{}",
            escape(name),
            value,
            comma
        );
    }
    out.push_str("],\n  \"conflicts\": [");
    let conflicts = summary
        .conflicts
        .as_ref()
        .map(|c| c.conflicts.as_slice())
        .unwrap_or(&[]);
    for (k, c) in conflicts.iter().enumerate() {
        let comma = if k + 1 == conflicts.len() { "" } else { ", " };
        let _ = write!(out, "\"{}\"{}", escape(&c.to_string()), comma);
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, ExecOptions};
    use crate::model::fig1_model;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\u{1}"), "x\\ny\\u0001");
    }

    #[test]
    fn run_report_is_deterministic_and_backend_independent() {
        let model = fig1_model(3, 4);
        let interp = Backend::Interpreted
            .execute(&model, &ExecOptions::traced())
            .expect("runs");
        let compiled = Backend::Compiled
            .execute(&model, &ExecOptions::traced())
            .expect("runs");
        let a = run_report(&model, &interp.summary);
        let b = run_report(&model, &compiled.summary);
        assert_eq!(a, b);
        assert!(a.contains("\"cs_max\": 7"), "{a}");
        assert!(a.contains("\"delta_cycles\": 43"), "{a}");
        assert!(a.ends_with("\"conflicts\": []\n}\n"), "{a}");
    }

    #[test]
    fn run_report_lists_conflicts_of_traced_runs() {
        use crate::text::parse_model;
        let text = "model clash steps 4\nregister A init 1\nregister B init 2\nregister T\n\
                    bus X\nbus Y\nbus Z\nmodule CPA ops passa comb\nmodule CPB ops passa comb\n\
                    transfer (A,X,-,-,2,CPA,2,Y,T)\ntransfer (B,X,-,-,2,CPB,2,Z,T)\n";
        let model = parse_model(text).expect("parses");
        let outcome = Backend::Interpreted
            .execute(&model, &ExecOptions::traced())
            .expect("runs");
        let doc = run_report(&model, &outcome.summary);
        assert!(doc.contains("ILLEGAL on bus `X`"), "{doc}");
    }
}
