//! The parallel batch engine: a `std::thread` worker pool over a shared
//! job queue.
//!
//! The design follows the shape Strauch's *Deriving AOC C-Models … for
//! Single- or Multi-Threaded Execution* derives for RT-level simulation:
//! jobs are fully independent simulation units, so the engine needs no
//! synchronization beyond the queue handing out job indices and one slot
//! per job to deposit the result. Each worker elaborates and runs its
//! jobs on private kernel instances — the kernel has no shared mutable
//! state (enforced by `#![forbid(unsafe_code)]` plus the cross-thread
//! isolation test in `clockless-kernel`) — so the engine is
//! **deterministic by construction**: results land in spec order and are
//! bit-identical for any worker count.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use clockless_core::{RtModel, RtSimulation};

use crate::report::{FleetReport, JobResult};
use crate::spec::{BatchSpec, FleetError};

/// Runs every job of `spec` on a pool of `workers` threads and
/// aggregates the results.
///
/// Jobs are resolved to models up front (sequentially — parse errors
/// carry clean line/job attribution), then executed in parallel. Passing
/// `workers == 0` or `1` runs the batch on a single worker; the report
/// is identical either way apart from the machine-local wall-clock
/// fields.
///
/// # Errors
///
/// * [`FleetError::EmptyBatch`] for a spec with no jobs.
/// * [`FleetError::Io`] / [`FleetError::Build`] when a job's model
///   cannot be materialized.
/// * [`FleetError::Run`] when a simulation fails (e.g. delta overflow);
///   the error reported is the failing job with the lowest index, so
///   even failures are deterministic.
///
/// # Examples
///
/// ```
/// use clockless_fleet::{run_batch, BatchSpec, HlsWorkload, JobSource, JobSpec};
///
/// let spec = BatchSpec {
///     jobs: vec![
///         JobSpec::new("fir", JobSource::Hls(HlsWorkload::Fir { taps: 4 })),
///         JobSpec::new("poly", JobSource::Hls(HlsWorkload::Horner { degree: 3 })),
///     ],
/// };
/// let one = run_batch(&spec, 1)?;
/// let four = run_batch(&spec, 4)?;
/// // Bit-identical and identically ordered regardless of worker count.
/// assert_eq!(one.to_json(false), four.to_json(false));
/// # Ok::<(), clockless_fleet::FleetError>(())
/// ```
pub fn run_batch(spec: &BatchSpec, workers: usize) -> Result<FleetReport, FleetError> {
    if spec.jobs.is_empty() {
        return Err(FleetError::EmptyBatch);
    }
    let resolved: Vec<(String, RtModel)> = spec
        .jobs
        .iter()
        .map(|j| j.resolve().map(|m| (j.name.clone(), m)))
        .collect::<Result<_, _>>()?;

    let worker_count = workers.max(1).min(resolved.len());
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..resolved.len()).collect());
    let slots: Vec<Mutex<Option<Result<JobResult, FleetError>>>> =
        resolved.iter().map(|_| Mutex::new(None)).collect();

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..worker_count {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some(i) = next else { break };
                let (name, model) = &resolved[i];
                let outcome = run_job(name, model);
                *slots[i].lock().expect("slot lock") = Some(outcome);
            });
        }
    });
    let elapsed_ns = t0.elapsed().as_nanos() as u64;

    let mut jobs = Vec::with_capacity(resolved.len());
    for slot in slots {
        let outcome = slot
            .into_inner()
            .expect("slot lock")
            .expect("every queued job ran");
        jobs.push(outcome?);
    }
    let mut totals = clockless_kernel::SimStats::default();
    for j in &jobs {
        totals.merge(&j.stats);
    }
    Ok(FleetReport {
        jobs,
        totals,
        workers: worker_count,
        elapsed_ns,
    })
}

/// Runs one job on a fresh, private kernel instance (always traced, so
/// conflict diagnoses are available in the report).
fn run_job(name: &str, model: &RtModel) -> Result<JobResult, FleetError> {
    let run_err = |msg: String| FleetError::Run {
        job: name.to_string(),
        msg,
    };
    let t0 = Instant::now();
    let mut sim = RtSimulation::traced(model).map_err(|e| run_err(e.to_string()))?;
    let summary = sim
        .run_to_completion()
        .map_err(|e| run_err(e.to_string()))?;
    let wall_ns = t0.elapsed().as_nanos() as u64;
    Ok(JobResult {
        name: name.to_string(),
        model: model.name().to_string(),
        cs_max: model.cs_max(),
        tuples: model.tuples().len(),
        stats: summary.stats,
        registers: summary.registers,
        conflicts: summary.conflicts.expect("traced run records conflicts"),
        wall_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{HlsWorkload, JobSource, JobSpec};
    use clockless_core::model::fig1_model;
    use clockless_core::Value;

    fn mixed_spec() -> BatchSpec {
        let mut jobs = vec![
            JobSpec::new("fig1", JobSource::Model(Box::new(fig1_model(3, 4)))),
            JobSpec::new("fir", JobSource::Hls(HlsWorkload::Fir { taps: 6 })),
            JobSpec::new(
                "dag",
                JobSource::Hls(HlsWorkload::Random {
                    seed: 7,
                    nodes: 18,
                    inputs: 4,
                }),
            ),
        ];
        let mut stim = JobSpec::new("fig1_stim", JobSource::Model(Box::new(fig1_model(3, 4))));
        stim.overrides = vec![("R2".into(), 39)];
        jobs.push(stim);
        BatchSpec { jobs }
    }

    #[test]
    fn empty_batch_is_rejected() {
        assert_eq!(
            run_batch(&BatchSpec::default(), 2),
            Err(FleetError::EmptyBatch)
        );
    }

    #[test]
    fn results_keep_spec_order_and_values() {
        let report = run_batch(&mixed_spec(), 3).expect("runs");
        let names: Vec<&str> = report.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, ["fig1", "fir", "dag", "fig1_stim"]);
        assert_eq!(report.jobs[0].register("R1"), Some(Value::Num(7)));
        assert_eq!(report.jobs[3].register("R1"), Some(Value::Num(42)));
        assert_eq!(report.conflicted_jobs(), 0);
        // Totals are the sum of per-job counters.
        let deltas: u64 = report.jobs.iter().map(|j| j.stats.delta_cycles).sum();
        assert_eq!(report.totals.delta_cycles, deltas);
    }

    #[test]
    fn one_worker_and_many_workers_agree_bit_for_bit() {
        let spec = mixed_spec();
        let one = run_batch(&spec, 1).expect("runs");
        for workers in [2, 4, 8, 64] {
            let many = run_batch(&spec, workers).expect("runs");
            assert_eq!(one.to_json(false), many.to_json(false), "{workers} workers");
            // Beyond JSON: the structured rows agree except wall time.
            for (a, b) in one.jobs.iter().zip(&many.jobs) {
                let mut b = b.clone();
                b.wall_ns = a.wall_ns;
                assert_eq!(*a, b);
            }
        }
    }

    #[test]
    fn worker_count_caps_at_job_count() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "only",
                JobSource::Model(Box::new(fig1_model(1, 1))),
            )],
        };
        let report = run_batch(&spec, 16).expect("runs");
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn conflicted_jobs_are_reported_not_fatal() {
        let text = "model clash steps 4\nregister A init 1\nregister B init 2\nregister T\n\
                    bus X\nbus Y\nbus Z\nmodule CPA ops passa comb\nmodule CPB ops passa comb\n\
                    transfer (A,X,-,-,2,CPA,2,Y,T)\ntransfer (B,X,-,-,2,CPB,2,Z,T)\n";
        let spec = BatchSpec {
            jobs: vec![
                JobSpec::new("clean", JobSource::Model(Box::new(fig1_model(1, 1)))),
                JobSpec::new("clash", JobSource::RtlText(text.into())),
            ],
        };
        let report = run_batch(&spec, 2).expect("runs");
        assert_eq!(report.conflicted_jobs(), 1);
        assert!(report.jobs[0].conflicts.is_clean());
        let first = report.jobs[1].conflicts.first().expect("conflict found");
        assert_eq!(first.name, "X");
        let json = report.to_json(false);
        assert!(json.contains("ILLEGAL on bus `X`"), "{json}");
    }

    #[test]
    fn build_failures_name_the_job() {
        let spec = BatchSpec {
            jobs: vec![JobSpec::new(
                "broken",
                JobSource::RtlText("not a model".into()),
            )],
        };
        let err = run_batch(&spec, 2).expect_err("fails");
        assert!(matches!(err, FleetError::Build { ref job, .. } if job == "broken"));
    }
}
