//! The value domain of clock-free RT models.
//!
//! The paper models ports and buses as VHDL `Integer` signals where regular
//! values are natural numbers and two negative sentinels are reserved:
//! `DISC = -1` ("disconnected", no value) and `ILLEGAL = -2` (conflict).
//! We render this as a proper sum type, [`Value`], and keep the encoded
//! form available through [`Value::to_encoded`]/[`Value::from_encoded`] so
//! models can be round-tripped through the paper's representation.
//!
//! The module also provides the paper's **resolution function**
//! ([`resolve`]): buses and functional-unit input ports are resolved
//! signals, and the function is what turns simultaneous drives into an
//! observable `ILLEGAL` — the paper's resource-conflict detector.

use std::fmt;

/// Encoding of [`Value::Disc`] in the paper's integer representation.
pub const DISC_ENCODING: i64 = -1;
/// Encoding of [`Value::Illegal`] in the paper's integer representation.
pub const ILLEGAL_ENCODING: i64 = -2;

/// A value carried by RT-level signals: a number, "no value", or the
/// conflict marker.
///
/// The paper restricts regular values to naturals; we additionally allow
/// negative numbers (needed by the IKS fixed-point arithmetic) and keep
/// the paper's encoding available only for non-negative values.
///
/// # Examples
///
/// ```
/// use clockless_core::value::Value;
///
/// let v = Value::Num(5);
/// assert!(v.is_num());
/// assert_eq!(v.num(), Some(5));
/// assert!(Value::Disc.is_disc());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// No value is being driven ("disconnected", the paper's `DISC`).
    Disc,
    /// A conflict occurred (the paper's `ILLEGAL`); absorbing in all
    /// operations and resolutions.
    Illegal,
    /// A regular numeric value.
    Num(i64),
}

impl Value {
    /// `true` for [`Value::Num`].
    pub fn is_num(self) -> bool {
        matches!(self, Value::Num(_))
    }

    /// `true` for [`Value::Disc`].
    pub fn is_disc(self) -> bool {
        self == Value::Disc
    }

    /// `true` for [`Value::Illegal`].
    pub fn is_illegal(self) -> bool {
        self == Value::Illegal
    }

    /// The numeric payload, if any.
    pub fn num(self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Encodes in the paper's integer representation
    /// (`DISC = -1`, `ILLEGAL = -2`, naturals unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`EncodeValueError`] for negative numbers, which collide
    /// with the sentinel space and have no encoding in the paper's scheme.
    pub fn to_encoded(self) -> Result<i64, EncodeValueError> {
        match self {
            Value::Disc => Ok(DISC_ENCODING),
            Value::Illegal => Ok(ILLEGAL_ENCODING),
            Value::Num(n) if n >= 0 => Ok(n),
            Value::Num(n) => Err(EncodeValueError(n)),
        }
    }

    /// Decodes from the paper's integer representation.
    ///
    /// `-1` and `-2` become the sentinels; any other value (including
    /// other negatives, which the paper never produces) becomes `Num`.
    pub fn from_encoded(raw: i64) -> Value {
        match raw {
            DISC_ENCODING => Value::Disc,
            ILLEGAL_ENCODING => Value::Illegal,
            n => Value::Num(n),
        }
    }
}

impl Default for Value {
    /// The default is [`Value::Disc`]: every port and bus in the paper is
    /// initialized to `DISC`.
    fn default() -> Self {
        Value::Disc
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Disc => f.write_str("DISC"),
            Value::Illegal => f.write_str("ILLEGAL"),
            Value::Num(n) => write!(f, "{n}"),
        }
    }
}

impl From<i64> for Value {
    /// Wraps a number; use [`Value::from_encoded`] for the sentinel-aware
    /// decoding instead.
    fn from(n: i64) -> Self {
        Value::Num(n)
    }
}

/// Error returned by [`Value::to_encoded`] for values outside the paper's
/// natural-number domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeValueError(pub i64);

impl fmt::Display for EncodeValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {} is negative and has no encoding in the paper's integer scheme",
            self.0
        )
    }
}

impl std::error::Error for EncodeValueError {}

/// The paper's resolution function for buses and input ports.
///
/// * all drivers `DISC` → `DISC`;
/// * any driver `ILLEGAL` → `ILLEGAL`;
/// * two or more non-`DISC` drivers → `ILLEGAL` (resource conflict);
/// * exactly one non-`DISC` driver → its value.
///
/// An empty driver list resolves to `DISC`.
///
/// # Examples
///
/// ```
/// use clockless_core::value::{resolve, Value};
///
/// assert_eq!(resolve(&[Value::Disc, Value::Num(4)]), Value::Num(4));
/// assert_eq!(resolve(&[Value::Num(1), Value::Num(2)]), Value::Illegal);
/// assert_eq!(resolve(&[Value::Disc, Value::Disc]), Value::Disc);
/// ```
pub fn resolve(drivers: &[Value]) -> Value {
    let mut seen: Option<Value> = None;
    for &d in drivers {
        match d {
            Value::Disc => {}
            Value::Illegal => return Value::Illegal,
            v @ Value::Num(_) => {
                if seen.is_some() {
                    return Value::Illegal;
                }
                seen = Some(v);
            }
        }
    }
    seen.unwrap_or(Value::Disc)
}

/// A [`clockless_kernel::Resolver`] wrapping [`resolve`], ready to attach
/// to kernel signals.
pub fn kernel_resolver() -> clockless_kernel::Resolver<Value> {
    std::sync::Arc::new(|drivers: &[Value]| resolve(drivers))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_roundtrip() {
        for v in [Value::Disc, Value::Illegal, Value::Num(0), Value::Num(17)] {
            assert_eq!(Value::from_encoded(v.to_encoded().unwrap()), v);
        }
    }

    #[test]
    fn negative_numbers_have_no_encoding() {
        assert!(Value::Num(-3).to_encoded().is_err());
    }

    #[test]
    fn decode_other_negatives_as_numbers() {
        // The paper never produces -3, but decoding must not lose it.
        assert_eq!(Value::from_encoded(-3), Value::Num(-3));
    }

    #[test]
    fn resolution_matches_paper_rules() {
        use Value::*;
        assert_eq!(resolve(&[]), Disc);
        assert_eq!(resolve(&[Disc, Disc, Disc]), Disc);
        assert_eq!(resolve(&[Disc, Num(9), Disc]), Num(9));
        assert_eq!(
            resolve(&[Num(1), Num(1)]),
            Illegal,
            "even equal values conflict"
        );
        assert_eq!(resolve(&[Illegal, Disc]), Illegal);
        assert_eq!(resolve(&[Num(1), Illegal]), Illegal);
        assert_eq!(resolve(&[Illegal]), Illegal);
    }

    #[test]
    fn illegal_absorbs_any_codriver_set() {
        use Value::*;
        // ILLEGAL wins regardless of its position or what rides along —
        // once a conflict (or poisoned value) is on the wire, nothing
        // launders it.
        for pos in 0..4 {
            for filler in [Disc, Num(7), Num(-3)] {
                let mut drivers = vec![filler; 4];
                drivers[pos] = Illegal;
                assert_eq!(resolve(&drivers), Illegal, "{drivers:?}");
            }
        }
        assert_eq!(resolve(&[Illegal, Illegal, Illegal]), Illegal);
    }

    #[test]
    fn all_disc_driver_sets_resolve_to_disc() {
        use Value::*;
        // A quiet bus stays DISC for any number of released drivers.
        for n in 0..32 {
            assert_eq!(resolve(&vec![Disc; n]), Disc, "{n} DISC drivers");
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Disc.to_string(), "DISC");
        assert_eq!(Value::Illegal.to_string(), "ILLEGAL");
        assert_eq!(Value::Num(12).to_string(), "12");
    }

    #[test]
    fn default_is_disc() {
        assert_eq!(Value::default(), Value::Disc);
    }
}
