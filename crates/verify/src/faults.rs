//! Deterministic fault-injection campaigns over RT models.
//!
//! The paper's central verification claim is that the clock-free subset
//! makes resource conflicts *observable*: simultaneous drives resolve to
//! `ILLEGAL` at a precise step and phase instead of silently racing. A
//! fault campaign probes how far that detector actually reaches. A
//! seeded, fully deterministic generator derives a set of model mutants
//! — stuck-at-`DISC` registers, spurious second drivers, dropped
//! transfer tuples, step-skewed write-backs, corrupted init values —
//! and every mutant runs on a **private kernel instance** via the
//! fault-tolerant `clockless-fleet` engine under a tight delta budget.
//!
//! Each run is classified against the golden (unmutated) run:
//!
//! * [`FaultOutcome::DetectedConflict`] — the mutant produced an
//!   `ILLEGAL`, localized to a site, step and phase. The detector works.
//! * [`FaultOutcome::DeltaOverflow`] — the mutant blew the delta budget
//!   (oscillation); caught by the budget, not the resolver.
//! * [`FaultOutcome::SilentCorruption`] — the run was clean but the
//!   final registers differ from the golden run: the fault **escaped**
//!   the conflict detector. These are the interesting rows — they mark
//!   the boundary of the paper's observability claim (a dropped transfer
//!   produces no second driver, so nothing conflicts; the state is just
//!   wrong).
//! * [`FaultOutcome::Masked`] — the run was clean *and* state-identical:
//!   the fault had no observable effect at all.
//!
//! The campaign report aggregates per-class detection coverage. On the
//! paper's Fig. 1 model, the `stuck` and `drivers` classes are detected
//! 100% (mixed `DISC`/value operands and double drives both resolve to
//! `ILLEGAL`), while `drops`, `skews` and `inits` legitimately escape —
//! the report says so instead of pretending otherwise.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use clockless_core::{
    Backend, ExecOptions, ModuleDecl, ModuleTiming, Op, Phase, RtModel, Step, TransferTuple, Value,
};
use clockless_fleet::{
    run_batch_with, BatchSpec, FailureKind, FleetConfig, FleetError, JobSource, JobSpec,
};
use clockless_kernel::SimStats;

/// The five fault classes a campaign can inject, used both to group
/// coverage numbers and to filter generation (`--classes` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Registers forced to start at `DISC` ([`FaultKind::StuckAtDisc`]).
    Stuck,
    /// Spurious second bus drivers ([`FaultKind::ExtraDriver`]).
    Drivers,
    /// Dropped transfer tuples ([`FaultKind::DropTransfer`]).
    Drops,
    /// Step-skewed write-backs ([`FaultKind::SkewWrite`]).
    Skews,
    /// Corrupted register init values ([`FaultKind::CorruptInit`]).
    Inits,
}

/// Every class, in canonical (reporting) order.
pub const ALL_CLASSES: [FaultClass; 5] = [
    FaultClass::Stuck,
    FaultClass::Drivers,
    FaultClass::Drops,
    FaultClass::Skews,
    FaultClass::Inits,
];

impl FaultClass {
    /// Stable machine-readable name (JSON and `--classes` grammar).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Stuck => "stuck",
            FaultClass::Drivers => "drivers",
            FaultClass::Drops => "drops",
            FaultClass::Skews => "skews",
            FaultClass::Inits => "inits",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FaultClass {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultClass, String> {
        match s {
            "stuck" => Ok(FaultClass::Stuck),
            "drivers" => Ok(FaultClass::Drivers),
            "drops" => Ok(FaultClass::Drops),
            "skews" => Ok(FaultClass::Skews),
            "inits" => Ok(FaultClass::Inits),
            other => Err(format!(
                "unknown fault class `{other}` (expected stuck|drivers|drops|skews|inits)"
            )),
        }
    }
}

/// One concrete mutation of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Force a register's init to `DISC` — the register presents no value
    /// until (if ever) something writes it.
    StuckAtDisc {
        /// The register whose init is cleared.
        register: String,
    },
    /// Add a spurious combinational module plus a transfer that drives
    /// `register` onto `bus` in `step` — a second driver on a bus the
    /// schedule already uses then, which the resolution function must
    /// turn into `ILLEGAL`.
    ExtraDriver {
        /// The double-driven bus.
        bus: String,
        /// The step in which both drivers assert.
        step: Step,
        /// The register the spurious driver reads.
        register: String,
    },
    /// Remove the transfer tuple at `index` entirely.
    DropTransfer {
        /// Index into the model's tuple list.
        index: usize,
    },
    /// Shift the write-back of the tuple at `index` by `delta` steps
    /// (±1), breaking the read-step + latency = write-step invariant.
    SkewWrite {
        /// Index into the model's tuple list.
        index: usize,
        /// The skew, −1 or +1 steps.
        delta: i32,
    },
    /// Replace a register's init with a different (seeded) value.
    CorruptInit {
        /// The register whose init changes.
        register: String,
        /// The corrupted value.
        value: i64,
    },
}

impl FaultKind {
    /// The class this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::StuckAtDisc { .. } => FaultClass::Stuck,
            FaultKind::ExtraDriver { .. } => FaultClass::Drivers,
            FaultKind::DropTransfer { .. } => FaultClass::Drops,
            FaultKind::SkewWrite { .. } => FaultClass::Skews,
            FaultKind::CorruptInit { .. } => FaultClass::Inits,
        }
    }

    /// Applies the fault to a copy of `model`, producing the mutant.
    ///
    /// # Errors
    ///
    /// A message when the mutation cannot be expressed on this model
    /// (generation only emits applicable faults, so this is defensive).
    pub fn apply(&self, model: &RtModel) -> Result<RtModel, String> {
        let mut m = model.clone();
        match self {
            FaultKind::StuckAtDisc { register } => {
                m.set_register_init(register, Value::Disc)
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::ExtraDriver {
                bus,
                step,
                register,
            } => {
                let spur = format!("SPUR_{bus}_{step}");
                m.add_module(ModuleDecl::single(
                    &spur,
                    Op::PassA,
                    ModuleTiming::Combinational,
                ))
                .map_err(|e| e.to_string())?;
                m.add_transfer(TransferTuple::new(*step, spur).src_a(register, bus))
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::DropTransfer { index } => {
                m.remove_transfer(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?;
            }
            FaultKind::SkewWrite { index, delta } => {
                let tuple = m
                    .tuples()
                    .get(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?
                    .clone();
                let mut skewed = tuple;
                let write = skewed
                    .write
                    .as_mut()
                    .ok_or_else(|| format!("transfer {index} has no write-back"))?;
                let step = write.step as i64 + i64::from(*delta);
                if step < 1 || step > m.cs_max() as i64 {
                    return Err(format!("skewed write step {step} is out of range"));
                }
                write.step = step as Step;
                m.replace_transfer_unchecked(*index, skewed)
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::CorruptInit { register, value } => {
                m.set_register_init(register, Value::Num(*value))
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(m)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAtDisc { register } => {
                write!(f, "stuck-at-DISC register `{register}`")
            }
            FaultKind::ExtraDriver {
                bus,
                step,
                register,
            } => write!(
                f,
                "spurious driver `{register}` on bus `{bus}` in step {step}"
            ),
            FaultKind::DropTransfer { index } => write!(f, "dropped transfer #{index}"),
            FaultKind::SkewWrite { index, delta } => {
                write!(f, "write of transfer #{index} skewed {delta:+} step(s)")
            }
            FaultKind::CorruptInit { register, value } => {
                write!(f, "corrupted init `{register}` = {value}")
            }
        }
    }
}

/// How a mutant run was classified against the golden run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The mutant produced at least one `ILLEGAL`; the first conflict's
    /// localization is recorded.
    DetectedConflict {
        /// The conflict site's kind (bus, module port, register…).
        site: String,
        /// The conflicting signal's name.
        name: String,
        /// The control step the conflict became visible in.
        step: Step,
        /// The phase within the step.
        phase: Phase,
    },
    /// The mutant exhausted the campaign's delta-cycle budget.
    DeltaOverflow,
    /// The run was clean but the final registers differ from the golden
    /// run — the fault escaped the conflict detector.
    SilentCorruption {
        /// First differing register (declaration order).
        register: String,
        /// Golden final value.
        expected: Value,
        /// Mutant final value.
        got: Value,
    },
    /// No conflict and no state difference: the fault had no observable
    /// effect.
    Masked,
}

impl FaultOutcome {
    /// Stable machine-readable status string.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultOutcome::DetectedConflict { .. } => "detected-conflict",
            FaultOutcome::DeltaOverflow => "delta-overflow",
            FaultOutcome::SilentCorruption { .. } => "silent-corruption",
            FaultOutcome::Masked => "masked",
        }
    }

    /// `true` when the fault was *detected* — the run observably failed
    /// (conflict or budget blowout) rather than finishing with wrong or
    /// unchanged state.
    pub fn is_detected(&self) -> bool {
        matches!(
            self,
            FaultOutcome::DetectedConflict { .. } | FaultOutcome::DeltaOverflow
        )
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOutcome::DetectedConflict {
                site,
                name,
                step,
                phase,
            } => write!(
                f,
                "detected: ILLEGAL on {site} `{name}` in step {step} phase {phase}"
            ),
            FaultOutcome::DeltaOverflow => write!(f, "detected: delta budget exhausted"),
            FaultOutcome::SilentCorruption {
                register,
                expected,
                got,
            } => write!(
                f,
                "SILENT: register `{register}` ended {got}, golden run says {expected}"
            ),
            FaultOutcome::Masked => write!(f, "masked: no observable effect"),
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// PRNG seed; the same seed over the same model yields a
    /// byte-identical report.
    pub seed: u64,
    /// Classes to inject; empty means all of [`ALL_CLASSES`].
    pub classes: Vec<FaultClass>,
    /// Cap on the number of faults (deterministic prefix of the
    /// enumeration); `None` runs everything.
    pub max_faults: Option<usize>,
    /// Fleet worker threads for the mutant runs.
    pub workers: usize,
    /// Execution backend for the golden run and every mutant. Both
    /// engines are observably byte-identical, so the campaign report does
    /// not depend on this — it only selects the machinery (and lets CI
    /// exercise the compiled engine against the full mutant space).
    pub backend: Backend,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC10C_1E55,
            classes: Vec::new(),
            max_faults: None,
            workers: 1,
            backend: Backend::default(),
        }
    }
}

/// Errors from a fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultsError {
    /// The golden (unmutated) run failed; nothing to compare against.
    Golden {
        /// What went wrong.
        msg: String,
    },
    /// A mutation could not be applied to the model.
    Apply {
        /// The fault's description.
        fault: String,
        /// What went wrong.
        msg: String,
    },
    /// A mutant failed in a way the campaign cannot classify (build or
    /// unexpected kernel error, not a budget blowout).
    Mutant {
        /// The fault's description.
        fault: String,
        /// What went wrong.
        msg: String,
    },
    /// The batch engine failed.
    Fleet(FleetError),
    /// Generation produced no faults (empty model, or the class filter
    /// excluded everything).
    NoFaults,
}

impl fmt::Display for FaultsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultsError::Golden { msg } => write!(f, "golden run failed: {msg}"),
            FaultsError::Apply { fault, msg } => write!(f, "cannot apply {fault}: {msg}"),
            FaultsError::Mutant { fault, msg } => {
                write!(f, "unclassifiable mutant failure for {fault}: {msg}")
            }
            FaultsError::Fleet(e) => write!(f, "fleet engine: {e}"),
            FaultsError::NoFaults => write!(f, "no faults to inject"),
        }
    }
}

impl std::error::Error for FaultsError {}

impl From<FleetError> for FaultsError {
    fn from(e: FleetError) -> Self {
        FaultsError::Fleet(e)
    }
}

/// One campaign row: an injected fault and its classified outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRow {
    /// The injected fault.
    pub fault: FaultKind,
    /// The classified outcome of the mutant run.
    pub outcome: FaultOutcome,
}

/// Results of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The target model's name.
    pub model: String,
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Delta-cycle budget each mutant ran under.
    pub delta_budget: u64,
    /// Per-fault rows, in generation order.
    pub rows: Vec<CampaignRow>,
    /// Merged kernel counters of every mutant run, with
    /// `injected_faults` stamped to the campaign size.
    pub totals: SimStats,
}

impl CampaignReport {
    /// Faults whose mutants observably failed (conflict or overflow).
    pub fn detected(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_detected()).count()
    }

    /// Faults that escaped as silent corruption.
    pub fn silent(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, FaultOutcome::SilentCorruption { .. }))
            .count()
    }

    /// Faults with no observable effect.
    pub fn masked(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, FaultOutcome::Masked))
            .count()
    }

    /// Overall detection coverage in `[0, 1]` (detected / injected).
    pub fn coverage(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.detected() as f64 / self.rows.len() as f64
    }

    /// Per-class `(class, detected, total)`, canonical class order,
    /// classes with no injected faults omitted.
    pub fn class_coverage(&self) -> Vec<(FaultClass, usize, usize)> {
        ALL_CLASSES
            .iter()
            .filter_map(|&class| {
                let in_class: Vec<_> = self
                    .rows
                    .iter()
                    .filter(|r| r.fault.class() == class)
                    .collect();
                if in_class.is_empty() {
                    return None;
                }
                let detected = in_class.iter().filter(|r| r.outcome.is_detected()).count();
                Some((class, detected, in_class.len()))
            })
            .collect()
    }

    /// Renders the report as a deterministic JSON document — the same
    /// model, seed and config produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"campaign\": {{\"model\": \"{}\", \"seed\": {}, \"delta_budget\": {}, \
             \"faults\": {}, \"detected\": {}, \"silent\": {}, \"masked\": {}, \
             \"coverage\": {:.4}}},",
            json_escape(&self.model),
            self.seed,
            self.delta_budget,
            self.rows.len(),
            self.detected(),
            self.silent(),
            self.masked(),
            self.coverage()
        );
        out.push_str("  \"classes\": [");
        let classes = self.class_coverage();
        for (i, (class, detected, total)) in classes.iter().enumerate() {
            let comma = if i + 1 == classes.len() { "" } else { ", " };
            let _ = write!(
                out,
                "{{\"class\": \"{class}\", \"detected\": {detected}, \"total\": {total}}}{comma}"
            );
        }
        out.push_str("],\n  \"faults\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"class\": \"{}\", \"fault\": \"{}\", \"outcome\": \"{}\", \
                 \"detail\": \"{}\"}}{}",
                i,
                row.fault.class(),
                json_escape(&row.fault.to_string()),
                row.outcome.as_str(),
                json_escape(&row.outcome.to_string()),
                comma
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "  ],\n  \"totals\": {{\"delta_cycles\": {}, \"process_activations\": {}, \
             \"injected_faults\": {}, \"retries\": {}}}",
            t.delta_cycles, t.process_activations, t.injected_faults, t.retries
        );
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault campaign on `{}` (seed {}): {} faults, {} detected ({:.0}%), \
             {} silent, {} masked",
            self.model,
            self.seed,
            self.rows.len(),
            self.detected(),
            self.coverage() * 100.0,
            self.silent(),
            self.masked()
        )?;
        for (class, detected, total) in self.class_coverage() {
            writeln!(f, "  {:<8} {detected}/{total} detected", class.as_str())?;
        }
        for row in &self.rows {
            writeln!(f, "  {:<50} {}", row.fault.to_string(), row.outcome)?;
        }
        Ok(())
    }
}

/// splitmix64 — the same tiny deterministic PRNG the property tests use.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Enumerates the faults a campaign would inject, deterministically:
/// fixed class order, model-declaration order within a class, seeded
/// values only where a fault needs one (corrupted inits).
pub fn generate_faults(model: &RtModel, config: &CampaignConfig) -> Vec<FaultKind> {
    let wants = |class: FaultClass| config.classes.is_empty() || config.classes.contains(&class);
    let mut rng = config.seed;
    let mut faults = Vec::new();

    if wants(FaultClass::Stuck) {
        for r in model.registers() {
            if r.init.is_num() {
                faults.push(FaultKind::StuckAtDisc {
                    register: r.name.clone(),
                });
            }
        }
    }
    if wants(FaultClass::Drivers) {
        let mut seen: Vec<(String, Step)> = Vec::new();
        for tuple in model.tuples() {
            for route in [&tuple.src_a, &tuple.src_b].into_iter().flatten() {
                let key = (route.bus.clone(), tuple.read_step);
                if seen.contains(&key) {
                    continue; // one spurious driver per (bus, step)
                }
                seen.push(key);
                faults.push(FaultKind::ExtraDriver {
                    bus: route.bus.clone(),
                    step: tuple.read_step,
                    register: route.register.clone(),
                });
            }
        }
    }
    if wants(FaultClass::Drops) {
        for index in 0..model.tuples().len() {
            faults.push(FaultKind::DropTransfer { index });
        }
    }
    if wants(FaultClass::Skews) {
        for (index, tuple) in model.tuples().iter().enumerate() {
            let Some(write) = &tuple.write else { continue };
            for delta in [-1i32, 1] {
                let step = write.step as i64 + i64::from(delta);
                if step >= 1 && step <= model.cs_max() as i64 {
                    faults.push(FaultKind::SkewWrite { index, delta });
                }
            }
        }
    }
    if wants(FaultClass::Inits) {
        for r in model.registers() {
            let base = r.init.num().unwrap_or(0);
            let value = base.wrapping_add(1 + (splitmix64(&mut rng) % 997) as i64);
            faults.push(FaultKind::CorruptInit {
                register: r.name.clone(),
                value,
            });
        }
    }

    if let Some(max) = config.max_faults {
        faults.truncate(max);
    }
    faults
}

/// Runs a seeded fault campaign on `model`: golden run, deterministic
/// fault generation, one fleet job per mutant (each on a private kernel
/// under a tight delta budget), outcome classification, coverage report.
///
/// # Errors
///
/// [`FaultsError`] when the golden run fails, a mutation cannot be
/// applied, a mutant fails unclassifiably, or nothing was generated.
pub fn run_campaign(
    model: &RtModel,
    config: &CampaignConfig,
) -> Result<CampaignReport, FaultsError> {
    let golden = config
        .backend
        .execute(model, &ExecOptions::traced())
        .map_err(|e| FaultsError::Golden { msg: e.to_string() })?
        .summary;
    let golden_registers: HashMap<&str, Value> = golden
        .registers
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();

    let faults = generate_faults(model, config);
    if faults.is_empty() {
        return Err(FaultsError::NoFaults);
    }

    // Twice the exact quiescence bound (1 + 6·CS_MAX deltas) plus slack:
    // roomy for every legitimate mutant, tight enough that an oscillating
    // one is cut off after a few extra steps, not 10^8 deltas later.
    let delta_budget = 2 * (1 + 6 * model.cs_max() as u64) + 16;

    let mut jobs = Vec::with_capacity(faults.len());
    for (i, fault) in faults.iter().enumerate() {
        let mutant = fault.apply(model).map_err(|msg| FaultsError::Apply {
            fault: fault.to_string(),
            msg,
        })?;
        jobs.push(JobSpec::new(
            format!("fault_{i:03}"),
            JobSource::Model(Box::new(mutant)),
        ));
    }
    let fleet_config = FleetConfig {
        delta_budget: Some(delta_budget),
        backend: Some(config.backend),
        ..FleetConfig::default()
    };
    let report = run_batch_with(&BatchSpec { jobs }, config.workers, &fleet_config)?;

    let mut rows = Vec::with_capacity(faults.len());
    for (fault, job) in faults.into_iter().zip(&report.jobs) {
        let outcome = match job {
            clockless_fleet::JobOutcome::Failed(q) => match q.kind {
                FailureKind::DeltaBudget | FailureKind::WallBudget => FaultOutcome::DeltaOverflow,
                _ => {
                    return Err(FaultsError::Mutant {
                        fault: fault.to_string(),
                        msg: q.error.clone(),
                    })
                }
            },
            clockless_fleet::JobOutcome::Ok(result) => {
                if let Some(first) = result.conflicts.first() {
                    FaultOutcome::DetectedConflict {
                        site: first.site.to_string(),
                        name: first.name.clone(),
                        step: first.visible_at.step,
                        phase: first.visible_at.phase,
                    }
                } else {
                    // Clean run: diff the mutant's final registers against
                    // the golden run (registers the mutant added — none
                    // today — would not count).
                    let diff = result.registers.iter().find(|(name, value)| {
                        golden_registers
                            .get(name.as_str())
                            .is_some_and(|g| g != value)
                    });
                    match diff {
                        Some((register, got)) => FaultOutcome::SilentCorruption {
                            register: register.clone(),
                            expected: golden_registers[register.as_str()],
                            got: *got,
                        },
                        None => FaultOutcome::Masked,
                    }
                }
            }
        };
        rows.push(CampaignRow { fault, outcome });
    }

    let mut totals = report.totals;
    totals.injected_faults = rows.len() as u64;
    Ok(CampaignReport {
        model: model.name().to_string(),
        seed: config.seed,
        delta_budget,
        rows,
        totals,
    })
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;

    fn campaign(classes: &[FaultClass], workers: usize) -> CampaignReport {
        let config = CampaignConfig {
            classes: classes.to_vec(),
            workers,
            ..CampaignConfig::default()
        };
        run_campaign(&fig1_model(3, 4), &config).expect("campaign runs")
    }

    #[test]
    fn generation_is_deterministic_and_covers_all_classes() {
        let model = fig1_model(3, 4);
        let config = CampaignConfig::default();
        let a = generate_faults(&model, &config);
        let b = generate_faults(&model, &config);
        assert_eq!(a, b, "same seed, same faults");
        // fig1: 2 stuck (R1, R2), 2 drivers (B1@5, B2@5), 1 drop,
        // 2 skews (write step 6 → 5 and 7), 2 corrupted inits.
        assert_eq!(a.len(), 9);
        for class in ALL_CLASSES {
            assert!(
                a.iter().any(|f| f.class() == class),
                "missing class {class}"
            );
        }
        // A different seed changes only the seeded values (inits).
        let other = generate_faults(
            &model,
            &CampaignConfig {
                seed: 1,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(a.len(), other.len());
        assert_ne!(a, other, "corrupted init values depend on the seed");
    }

    #[test]
    fn class_filter_restricts_generation() {
        let model = fig1_model(3, 4);
        let config = CampaignConfig {
            classes: vec![FaultClass::Drivers],
            ..CampaignConfig::default()
        };
        let faults = generate_faults(&model, &config);
        assert_eq!(faults.len(), 2);
        assert!(faults.iter().all(|f| f.class() == FaultClass::Drivers));
        // max_faults takes a deterministic prefix.
        let capped = generate_faults(
            &model,
            &CampaignConfig {
                max_faults: Some(3),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn same_seed_produces_byte_identical_reports() {
        let a = campaign(&[], 1);
        let b = campaign(&[], 4);
        assert_eq!(a.to_json(), b.to_json(), "seed + model pin the report");
        assert_eq!(a, b);
    }

    #[test]
    fn dual_driver_conflicts_are_fully_detected_on_fig1() {
        let report = campaign(&[FaultClass::Drivers], 2);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            match &row.outcome {
                FaultOutcome::DetectedConflict {
                    name, step, phase, ..
                } => {
                    // Both spurious drivers assert in step 5; the conflict
                    // becomes visible one delta later (rb at the earliest).
                    assert_eq!(*step, 5, "{name}");
                    assert!(*phase >= Phase::Rb, "{phase}");
                }
                other => panic!("driver fault escaped: {other}"),
            }
        }
        let cov = report.class_coverage();
        assert_eq!(cov, vec![(FaultClass::Drivers, 2, 2)]);
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stuck_at_disc_is_detected_via_mixed_operands() {
        // A stuck register feeds the ADD a DISC operand next to a live
        // one — §2.6's operand rules turn that into ILLEGAL.
        let report = campaign(&[FaultClass::Stuck], 1);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.detected(), 2);
        assert_eq!(report.silent(), 0);
    }

    #[test]
    fn dropped_transfers_escape_as_silent_corruption() {
        // No second driver, no ILLEGAL — just a register that never gets
        // written. This is the documented boundary of the detector.
        let report = campaign(&[FaultClass::Drops], 1);
        assert_eq!(report.rows.len(), 1);
        match &report.rows[0].outcome {
            FaultOutcome::SilentCorruption {
                register,
                expected,
                got,
            } => {
                assert_eq!(register, "R1");
                assert_eq!(*expected, Value::Num(7), "golden run: R1 := R1 + R2");
                assert_eq!(*got, Value::Num(3), "mutant: R1 keeps its init");
            }
            other => panic!("expected silent corruption, got {other}"),
        }
    }

    #[test]
    fn full_campaign_report_is_honest_about_coverage() {
        let report = campaign(&[], 2);
        assert_eq!(report.rows.len(), 9);
        assert_eq!(report.totals.injected_faults, 9);
        // stuck + drivers detected; drops/skews/inits escape on fig1.
        assert_eq!(report.detected(), 4);
        assert!(report.silent() >= 4, "drops/skews/inits corrupt silently");
        assert!(report.coverage() < 1.0);
        let json = report.to_json();
        assert!(
            json.contains("\"class\": \"stuck\", \"detected\": 2, \"total\": 2"),
            "{json}"
        );
        assert!(
            json.contains("\"class\": \"drivers\", \"detected\": 2, \"total\": 2"),
            "{json}"
        );
        assert!(json.contains("\"injected_faults\": 9"), "{json}");
        let text = report.to_string();
        assert!(text.contains("9 faults"), "{text}");
        assert!(text.contains("stuck"), "{text}");
    }

    #[test]
    fn campaign_reports_are_backend_independent() {
        // The whole campaign — golden run, mutant fleet, classification —
        // must be byte-identical whichever engine executes it.
        let interp = campaign(&[], 2);
        let config = CampaignConfig {
            workers: 2,
            backend: Backend::Compiled,
            ..CampaignConfig::default()
        };
        let compiled = run_campaign(&fig1_model(3, 4), &config).expect("campaign runs");
        assert_eq!(interp.to_json(), compiled.to_json());
        assert_eq!(interp, compiled);
    }

    #[test]
    fn fault_class_round_trips_through_strings() {
        for class in ALL_CLASSES {
            assert_eq!(class.as_str().parse::<FaultClass>(), Ok(class));
        }
        assert!("meteor".parse::<FaultClass>().is_err());
    }
}
