//! Simulation time: physical time plus VHDL-style delta cycles.
//!
//! The clock-free models of the paper never advance physical time: all
//! activity happens in *delta cycles* at time zero. Clocked and handshake
//! models, in contrast, schedule events at physical times. [`SimTime`]
//! carries both components so a single kernel serves every modeling style.

use std::fmt;

/// Physical simulation time in femtoseconds.
///
/// Femtoseconds give ample headroom: `u64` femtoseconds cover about five
/// hours of simulated time, far beyond any RT-level run.
pub type Femtos = u64;

/// One nanosecond expressed in femtoseconds.
pub const NS: Femtos = 1_000_000;
/// One picosecond expressed in femtoseconds.
pub const PS: Femtos = 1_000;

/// A point in simulation time: physical femtoseconds plus the delta-cycle
/// count within that physical instant.
///
/// Ordered lexicographically: all delta cycles of a physical time precede
/// the first delta cycle of any later physical time, mirroring VHDL
/// simulation semantics where delta cycles "do not increase physical time".
///
/// # Examples
///
/// ```
/// use clockless_kernel::time::SimTime;
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0.next_delta();
/// assert!(t0 < t1);
/// assert_eq!(t1.fs, 0);
/// assert_eq!(t1.delta, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    /// Physical time in femtoseconds.
    pub fs: Femtos,
    /// Delta cycle index within the physical instant `fs`.
    pub delta: u64,
}

impl SimTime {
    /// The origin of simulation: time zero, delta zero.
    pub const ZERO: SimTime = SimTime { fs: 0, delta: 0 };

    /// Creates a time at the first delta cycle of the given physical time.
    ///
    /// # Examples
    ///
    /// ```
    /// use clockless_kernel::time::{SimTime, NS};
    /// let t = SimTime::at(5 * NS);
    /// assert_eq!(t.fs, 5_000_000);
    /// assert_eq!(t.delta, 0);
    /// ```
    pub const fn at(fs: Femtos) -> SimTime {
        SimTime { fs, delta: 0 }
    }

    /// The next delta cycle at the same physical time.
    pub const fn next_delta(self) -> SimTime {
        SimTime {
            fs: self.fs,
            delta: self.delta + 1,
        }
    }

    /// The first delta cycle of a later physical time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `fs` is not strictly later than `self.fs`.
    pub fn advanced_to(self, fs: Femtos) -> SimTime {
        debug_assert!(fs > self.fs, "time must advance strictly");
        SimTime { fs, delta: 0 }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fs.is_multiple_of(NS) {
            write!(f, "{}ns+{}d", self.fs / NS, self.delta)
        } else {
            write!(f, "{}fs+{}d", self.fs, self.delta)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = SimTime { fs: 0, delta: 5 };
        let b = SimTime { fs: 1, delta: 0 };
        assert!(a < b);
        assert!(SimTime::ZERO < a);
    }

    #[test]
    fn next_delta_keeps_physical_time() {
        let t = SimTime::at(3 * NS).next_delta().next_delta();
        assert_eq!(t.fs, 3 * NS);
        assert_eq!(t.delta, 2);
    }

    #[test]
    fn display_prefers_nanoseconds() {
        assert_eq!(SimTime::at(2 * NS).to_string(), "2ns+0d");
        assert_eq!(SimTime { fs: 1500, delta: 3 }.to_string(), "1500fs+3d");
    }

    #[test]
    fn advanced_to_resets_delta() {
        let t = SimTime { fs: 10, delta: 7 }.advanced_to(20);
        assert_eq!(t, SimTime { fs: 20, delta: 0 });
    }
}
