//! Fleet run results: per-job rows plus merged totals.
//!
//! The JSON rendering is hand-rolled like every other machine-readable
//! surface in the workspace (no serialization crates; tier-1 resolves
//! offline). Two renderings exist: the default one is fully deterministic
//! — byte-identical for the same batch regardless of worker count or
//! machine — and the `timing` variant adds wall-clock fields for humans
//! and benches.

use std::fmt;
use std::fmt::Write as _;

use clockless_core::{ConflictReport, Step, Value};
use clockless_kernel::SimStats;

/// The outcome of one batch job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The job's name from the spec.
    pub name: String,
    /// The resolved model's name.
    pub model: String,
    /// The model's `CS_MAX`.
    pub cs_max: Step,
    /// Transfer-tuple count.
    pub tuples: usize,
    /// Kernel counters of the completed run.
    pub stats: SimStats,
    /// Final register values, in declaration order.
    pub registers: Vec<(String, Value)>,
    /// Conflict diagnoses (every job runs traced, so localization to
    /// step + phase is always available).
    pub conflicts: ConflictReport,
    /// Wall-clock nanoseconds this job took on its worker
    /// (machine-local; excluded from the deterministic JSON rendering).
    pub wall_ns: u64,
}

impl JobResult {
    /// Final value of a register by name.
    pub fn register(&self, name: &str) -> Option<Value> {
        self.registers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Aggregated results of a batch run.
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_fleet::{run_batch, BatchSpec, JobSource, JobSpec};
///
/// let spec = BatchSpec {
///     jobs: vec![JobSpec::new("only", JobSource::Model(Box::new(fig1_model(1, 2))))],
/// };
/// let report = run_batch(&spec, 4)?;
/// assert_eq!(report.conflicted_jobs(), 0);
/// // The deterministic rendering carries no wall-clock noise…
/// assert!(!report.to_json(false).contains("wall_ns"));
/// // …the timing rendering does.
/// assert!(report.to_json(true).contains("wall_ns"));
/// # Ok::<(), clockless_fleet::FleetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Per-job results, in spec order (independent of worker count).
    pub jobs: Vec<JobResult>,
    /// Every job's kernel counters merged with
    /// [`SimStats::merge`](clockless_kernel::SimStats::merge): counters
    /// sum, peaks take the maximum.
    pub totals: SimStats,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole batch (machine-local).
    pub elapsed_ns: u64,
}

impl FleetReport {
    /// How many jobs reported at least one resource conflict.
    pub fn conflicted_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| !j.conflicts.is_clean()).count()
    }

    /// Renders the report as JSON.
    ///
    /// With `timing == false` the output is deterministic: identical
    /// batches produce byte-identical documents regardless of worker
    /// count (the CLI test asserts `--jobs 1` vs `--jobs 4`). With
    /// `timing == true`, machine-local wall-clock fields (`wall_ns`,
    /// `elapsed_ns`, `workers`) are included.
    pub fn to_json(&self, timing: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(
            out,
            "  \"fleet\": {{\"jobs\": {}, \"conflicted_jobs\": {}",
            self.jobs.len(),
            self.conflicted_jobs()
        );
        if timing {
            let _ = write!(
                out,
                ", \"workers\": {}, \"elapsed_ns\": {}",
                self.workers, self.elapsed_ns
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"totals\": {},", stats_json(&self.totals));
        out.push_str("  \"jobs\": [\n");
        for (i, j) in self.jobs.iter().enumerate() {
            let comma = if i + 1 == self.jobs.len() { "" } else { "," };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"model\": \"{}\", \"cs_max\": {}, \"tuples\": {},\n     \
                 \"kernel\": {},\n     \"registers\": [",
                json_escape(&j.name),
                json_escape(&j.model),
                j.cs_max,
                j.tuples,
                stats_json(&j.stats)
            );
            for (k, (name, value)) in j.registers.iter().enumerate() {
                let comma = if k + 1 == j.registers.len() { "" } else { ", " };
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"value\": \"{}\"}}{}",
                    json_escape(name),
                    value,
                    comma
                );
            }
            out.push_str("],\n     \"conflicts\": [");
            for (k, c) in j.conflicts.conflicts.iter().enumerate() {
                let comma = if k + 1 == j.conflicts.conflicts.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(out, "\"{}\"{}", json_escape(&c.to_string()), comma);
            }
            out.push(']');
            if timing {
                let _ = write!(out, ",\n     \"wall_ns\": {}", j.wall_ns);
            }
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} jobs on {} workers in {:.3} ms — totals: {}",
            self.jobs.len(),
            self.workers,
            self.elapsed_ns as f64 / 1e6,
            self.totals
        )?;
        for j in &self.jobs {
            writeln!(
                f,
                "  {:<20} {:<20} {:>6} steps {:>5} tuples {:>9} deltas  {}",
                j.name,
                j.model,
                j.cs_max,
                j.tuples,
                j.stats.delta_cycles,
                if j.conflicts.is_clean() {
                    "clean".to_string()
                } else {
                    format!("{} conflict site(s)", j.conflicts.conflicts.len())
                }
            )?;
        }
        Ok(())
    }
}

/// Renders [`SimStats`] as a flat JSON object (shared by totals and
/// per-job rows).
fn stats_json(s: &SimStats) -> String {
    format!(
        "{{\"delta_cycles\": {}, \"process_activations\": {}, \"events\": {}, \
         \"driver_updates\": {}, \"time_advances\": {}, \"wake_filter_hits\": {}, \
         \"wake_filter_misses\": {}, \"peak_runnable\": {}, \"peak_pending_updates\": {}}}",
        s.delta_cycles,
        s.process_activations,
        s.events,
        s.driver_updates,
        s.time_advances,
        s.wake_filter_hits,
        s.wake_filter_misses,
        s.peak_runnable,
        s.peak_pending_updates
    )
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\u{1}"), "x\\ny\\u0001");
    }

    #[test]
    fn stats_json_is_flat_and_complete() {
        let s = SimStats {
            delta_cycles: 1,
            process_activations: 2,
            events: 3,
            driver_updates: 4,
            time_advances: 5,
            wake_filter_hits: 6,
            wake_filter_misses: 7,
            peak_runnable: 8,
            peak_pending_updates: 9,
        };
        let j = stats_json(&s);
        for needle in [
            "\"delta_cycles\": 1",
            "\"process_activations\": 2",
            "\"events\": 3",
            "\"driver_updates\": 4",
            "\"time_advances\": 5",
            "\"wake_filter_hits\": 6",
            "\"wake_filter_misses\": 7",
            "\"peak_runnable\": 8",
            "\"peak_pending_updates\": 9",
        ] {
            assert!(j.contains(needle), "{j} missing {needle}");
        }
    }
}
