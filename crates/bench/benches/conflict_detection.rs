//! Experiment E3 (§2.7 conflict localization): every injected conflict is
//! found at exactly the predicted step and phase; the bench measures the
//! cost of the traced run plus report extraction, and of the static
//! analysis, across conflict densities.

use clockless_bench::conflicted_model;
use clockless_core::{Phase, PhaseTime, RtSimulation};
use clockless_verify::{cross_check, static_conflicts};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn report() {
    eprintln!("--- E3: conflict detection and localization ---");
    eprintln!(
        "{:>8} {:>10} {:>10} {:>12} {:>14}",
        "pairs", "predicted", "confirmed", "dyn-only", "localization"
    );
    for pairs in [1usize, 4, 16] {
        let model = conflicted_model(pairs);
        let cc = cross_check(&model).expect("runs");
        // Every injected pair is predicted and confirmed at (step, rb).
        let mut exact = true;
        for i in 0..pairs {
            let want = PhaseTime::new(2 * i as u32 + 1, Phase::Rb);
            exact &= cc
                .confirmed
                .iter()
                .any(|p| p.name == format!("X{i}") && p.visible_at() == want);
        }
        eprintln!(
            "{pairs:>8} {:>10} {:>10} {:>12} {:>14}",
            cc.predicted.len(),
            cc.confirmed.len(),
            cc.dynamic_only.len(),
            if exact { "exact" } else { "MISSED" }
        );
        assert!(cc.all_confirmed());
        assert!(exact);
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("conflict_detection");

    for pairs in [1usize, 4, 16] {
        let model = conflicted_model(pairs);
        g.bench_with_input(
            BenchmarkId::new("dynamic_traced_run", pairs),
            &model,
            |b, m| {
                b.iter(|| {
                    let mut sim = RtSimulation::traced(m).expect("elaborates");
                    sim.run_to_completion().expect("runs");
                    sim.conflicts().expect("traced")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("static_analysis", pairs),
            &model,
            |b, m| b.iter(|| static_conflicts(m)),
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
