//! Experiment E1 (paper Fig. 1 / §2.7): cost of building, elaborating and
//! simulating the canonical example, and of each pipeline stage.

use clockless_bench::harness::Harness;
use clockless_core::model::fig1_model;
use clockless_core::{RtSimulation, Value};

fn report() {
    let model = fig1_model(3, 4);
    let mut sim = RtSimulation::new(&model).expect("elaborates");
    let summary = sim.run_to_completion().expect("runs");
    eprintln!("--- E1: Fig. 1 example ---");
    eprintln!("tuple: {}", model.tuples()[0]);
    eprintln!(
        "result: R1 = {} (expected 7), stats: {}",
        summary.register("R1").expect("R1 exists"),
        summary.stats
    );
    assert_eq!(summary.register("R1"), Some(Value::Num(7)));
}

fn main() {
    report();
    let mut h = Harness::new();
    {
        let mut g = h.group("fig1");

        g.bench("build_model", || fig1_model(3, 4));

        let model = fig1_model(3, 4);
        g.bench("elaborate", || {
            RtSimulation::new(&model).expect("elaborates")
        });

        g.bench("simulate", || {
            let mut sim = RtSimulation::new(&model).expect("elaborates");
            sim.run_to_completion().expect("runs")
        });

        g.bench("simulate_traced", || {
            let mut sim = RtSimulation::traced(&model).expect("elaborates");
            sim.run_to_completion().expect("runs")
        });
    }
    h.print_table();
}
