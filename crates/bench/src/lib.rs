//! Shared workload builders for the experiment benches.
//!
//! Every bench in `benches/` regenerates one experiment of DESIGN.md's
//! per-experiment index (E1–E8). The builders here produce the
//! parameterized models those benches sweep over.

use clockless_core::prelude::*;

pub mod harness;
pub mod snapshot;

/// A dense synthetic schedule: `width` independent accumulate transfers
/// (`A_i := A_i + B_i`) in each of `depth` read/write step pairs —
/// the workload used by the style-comparison and timing experiments.
///
/// # Panics
///
/// Panics only on internal name collisions (impossible for fresh builds).
pub fn dense_model(width: usize, depth: u32) -> RtModel {
    let mut m = RtModel::new(format!("dense_w{width}_d{depth}"), depth * 2);
    for i in 0..width {
        m.add_register_init(format!("A{i}"), Value::Num(i as i64 + 1))
            .expect("fresh name");
        m.add_register_init(format!("B{i}"), Value::Num(2 * i as i64 + 1))
            .expect("fresh name");
        m.add_bus(format!("X{i}")).expect("fresh name");
        m.add_bus(format!("Y{i}")).expect("fresh name");
        m.add_module(ModuleDecl::single(
            format!("ADD{i}"),
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .expect("fresh name");
    }
    for d in 0..depth {
        let read = 2 * d + 1;
        for i in 0..width {
            m.add_transfer(
                TransferTuple::new(read, format!("ADD{i}"))
                    .src_a(format!("A{i}"), format!("X{i}"))
                    .src_b(format!("B{i}"), format!("Y{i}"))
                    .write(read + 1, format!("X{i}"), format!("A{i}")),
            )
            .expect("schedule is valid by construction");
        }
    }
    m
}

/// A model with `pairs` deliberately double-booked buses (each conflict
/// pair drives one bus at the same `ra` phase) plus `pairs` clean
/// transfers, for the conflict-localization experiment.
///
/// # Panics
///
/// Panics only on internal name collisions.
pub fn conflicted_model(pairs: usize) -> RtModel {
    let steps = (pairs as u32).max(1) * 2 + 2;
    let mut m = RtModel::new(format!("conflicted_{pairs}"), steps);
    for i in 0..pairs {
        m.add_register_init(format!("A{i}"), Value::Num(1))
            .expect("fresh");
        m.add_register_init(format!("B{i}"), Value::Num(2))
            .expect("fresh");
        m.add_register(format!("T{i}")).expect("fresh");
        m.add_register(format!("U{i}")).expect("fresh");
        m.add_bus(format!("X{i}")).expect("fresh");
        m.add_bus(format!("Y{i}")).expect("fresh");
        m.add_bus(format!("Z{i}")).expect("fresh");
        m.add_module(ModuleDecl::single(
            format!("CPA{i}"),
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .expect("fresh");
        m.add_module(ModuleDecl::single(
            format!("CPB{i}"),
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .expect("fresh");
        let s = 2 * i as u32 + 1;
        // The colliding pair: both read over X_i at step s.
        m.add_transfer(
            TransferTuple::new(s, format!("CPA{i}"))
                .src_a(format!("A{i}"), format!("X{i}"))
                .write(s, format!("Y{i}"), format!("T{i}")),
        )
        .expect("valid");
        m.add_transfer(
            TransferTuple::new(s, format!("CPB{i}"))
                .src_a(format!("B{i}"), format!("X{i}"))
                .write(s, format!("Z{i}"), format!("U{i}")),
        )
        .expect("valid");
        // A clean transfer one step later.
        m.add_transfer(
            TransferTuple::new(s + 1, format!("CPA{i}"))
                .src_a(format!("B{i}"), format!("Y{i}"))
                .write(s + 1, format!("Z{i}"), format!("T{i}")),
        )
        .expect("valid");
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::RtSimulation;

    #[test]
    fn dense_model_runs_clean() {
        let m = dense_model(4, 3);
        let mut sim = RtSimulation::traced(&m).unwrap();
        let summary = sim.run_to_completion().unwrap();
        assert!(summary.conflicts.as_ref().unwrap().is_clean());
        // A_0 = 1 + 3 * 1
        assert_eq!(summary.register("A0"), Some(Value::Num(4)));
    }

    #[test]
    fn conflicted_model_has_expected_conflict_sites() {
        let m = conflicted_model(3);
        let mut sim = RtSimulation::traced(&m).unwrap();
        let summary = sim.run_to_completion().unwrap();
        let report = summary.conflicts.unwrap();
        for i in 0..3 {
            assert!(
                report.on(&format!("X{i}")).count() >= 1,
                "bus X{i} must conflict: {report}"
            );
        }
    }
}
