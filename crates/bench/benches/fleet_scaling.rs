//! Writes `BENCH_fleet.json` at the repository root: wall-clock scaling
//! of the `clockless-fleet` batch engine at 1/2/4/8 workers over two
//! batches — the `models/` corpus and a synthetic HLS schedule sweep.
//!
//! Per the workspace convention, counters (`total_delta_cycles`,
//! `jobs`, `deterministic`) are machine-independent; `wall_ns` and the
//! derived `speedup_vs_1` are machine-local. Speedup tops out at the
//! host's core count — a single-core container reports ~1.0× at every
//! worker count while still proving determinism (the `deterministic`
//! field asserts byte-identical JSON against the 1-worker run).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use clockless_fleet::{run_batch, BatchSpec, HlsWorkload, JobSource, JobSpec};

/// One (batch, worker-count) measurement.
struct Row {
    batch: &'static str,
    workers: usize,
    jobs: usize,
    wall_ns: u64,
    speedup_vs_1: f64,
    total_delta_cycles: u64,
    deterministic: bool,
}

/// The `models/` corpus as a batch, one job per `.rtl` file.
fn corpus_batch() -> BatchSpec {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../models");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("models dir exists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rtl"))
        .collect();
    paths.sort();
    BatchSpec::from_rtl_paths(paths)
}

/// A synthetic HLS schedule sweep: the shape the engine exists for —
/// many independent candidates from the same front end.
fn hls_batch() -> BatchSpec {
    let mut jobs = Vec::new();
    for seed in 0..8u64 {
        jobs.push(JobSpec::new(
            format!("dag{seed}"),
            JobSource::Hls(HlsWorkload::Random {
                seed,
                nodes: 48,
                inputs: 6,
            }),
        ));
    }
    for taps in [16usize, 24, 32] {
        jobs.push(JobSpec::new(
            format!("fir{taps}"),
            JobSource::Hls(HlsWorkload::Fir { taps }),
        ));
    }
    for degree in [12usize, 20] {
        jobs.push(JobSpec::new(
            format!("horner{degree}"),
            JobSource::Hls(HlsWorkload::Horner { degree }),
        ));
    }
    jobs.push(JobSpec::new("diffeq", JobSource::Hls(HlsWorkload::Diffeq)));
    BatchSpec { jobs }
}

/// Best-of-3 wall time for one worker count.
fn time_batch(spec: &BatchSpec, workers: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let report = run_batch(spec, workers).expect("batch runs");
        let ns = t.elapsed().as_nanos() as u64;
        std::hint::black_box(report);
        best = best.min(ns);
    }
    best
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    for (name, spec) in [("corpus", corpus_batch()), ("hls", hls_batch())] {
        let reference = run_batch(&spec, 1).expect("batch runs");
        let reference_json = reference.to_json(false);
        let base_ns = time_batch(&spec, 1);
        for workers in [1usize, 2, 4, 8] {
            let report = run_batch(&spec, workers).expect("batch runs");
            let deterministic = report.to_json(false) == reference_json;
            assert!(deterministic, "{name}@{workers} diverged from 1-worker run");
            let wall_ns = if workers == 1 {
                base_ns
            } else {
                time_batch(&spec, workers)
            };
            rows.push(Row {
                batch: name,
                workers,
                jobs: report.jobs.len(),
                wall_ns,
                speedup_vs_1: base_ns as f64 / wall_ns as f64,
                total_delta_cycles: report.totals.delta_cycles,
                deterministic,
            });
            eprintln!(
                "{name:<8} workers={workers} jobs={} wall={:.3} ms speedup={:.2}x",
                report.jobs.len(),
                wall_ns as f64 / 1e6,
                base_ns as f64 / wall_ns as f64
            );
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench fleet_scaling\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"batch\": \"{}\", \"workers\": {}, \"jobs\": {}, \"wall_ns\": {}, \
             \"speedup_vs_1\": {:.2}, \"total_delta_cycles\": {}, \"deterministic\": {}}}{}",
            r.batch,
            r.workers,
            r.jobs,
            r.wall_ns,
            r.speedup_vs_1,
            r.total_delta_cycles,
            r.deterministic,
            comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet.json");
    std::fs::write(&path, out).expect("writes BENCH_fleet.json");
    eprintln!(
        "fleet scaling: {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
