//! The generic job-queue executor: submit → incremental emission → drain.
//!
//! This is the engine room the batch API ([`run_batch_with`](crate::run_batch_with)) and the
//! serve daemon (`clockless-serve`) share. The shape is deliberately the
//! sync one the ROADMAP's sync-vs-async analysis recommends — a
//! [`std::thread`] worker pool over one shared queue — but the *surface*
//! is transport-agnostic:
//!
//! * work is submitted under a caller-chosen **ticket** (an opaque `u64`
//!   correlation id),
//! * every finished unit is **emitted incrementally** on an
//!   [`mpsc`](std::sync::mpsc) channel as an [`Emission`] the moment it
//!   completes (no batch barrier), and
//! * [`ThreadPool::drain`] blocks until everything submitted so far has
//!   been emitted.
//!
//! Because results are keyed by ticket rather than by arrival order, a
//! caller that wants deterministic output (the fleet report) reorders
//! them, while a caller that wants latency (the daemon streaming NDJSON
//! response lines) forwards them as they arrive. An async front end can
//! replace either caller without touching job execution: the
//! [`JobExecutor`] trait is object-safe, and the emission channel is the
//! only coupling between execution and transport.
//!
//! Panic fencing lives at the executor layer: a unit of work that panics
//! is caught at the worker fence and converted to an emission by the
//! pool's `on_panic` handler, so one hostile job can neither kill a
//! worker thread nor starve its ticket of a response.
//!
//! # Examples
//!
//! ```
//! use std::sync::mpsc;
//! use clockless_fleet::executor::{Emission, JobExecutor, ThreadPool};
//!
//! let (tx, rx) = mpsc::channel();
//! let pool = ThreadPool::new(2, tx, |_ticket, msg| format!("panicked: {msg}"));
//! for t in 0..4u64 {
//!     pool.submit(t, Box::new(move || format!("job {t} done")));
//! }
//! pool.drain();
//! let mut got: Vec<(u64, String)> = rx.try_iter().map(|e| (e.ticket, e.payload)).collect();
//! got.sort(); // emissions arrive in completion order; tickets restore any order you need
//! assert_eq!(got[0], (0, "job 0 done".to_string()));
//! assert_eq!(got.len(), 4);
//! pool.shutdown();
//! ```

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use clockless_core::{
    execute_checked, Backend, CheckProgram, CheckedError, ExecOptions, OptLevel, RtModel,
};
use clockless_kernel::KernelError;

use crate::engine::FleetConfig;
use crate::report::{FailureKind, JobFailure, JobOutcome, JobResult};
use crate::spec::{ChaosProbe, FleetError, JobSource, JobSpec};

/// A unit of work: runs on a worker thread, produces one emission
/// payload.
pub type WorkFn<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// One finished unit of work, tagged with the ticket it was submitted
/// under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emission<T> {
    /// The caller-chosen correlation id from [`JobExecutor::submit`].
    pub ticket: u64,
    /// What the work produced.
    pub payload: T,
}

/// The object-safe submission surface of a job-queue executor emitting
/// payloads of type `T`.
///
/// Both of the executor's callers program against this trait — the batch
/// engine through a concrete [`ThreadPool`], the daemon through
/// `&dyn JobExecutor<_>` — so a future async executor only has to
/// implement `submit`/`queue_depth` and feed the same emission channel.
pub trait JobExecutor<T>: Send + Sync {
    /// Enqueues a unit of work under `ticket`. Returns immediately; the
    /// result arrives on the executor's emission channel.
    fn submit(&self, ticket: u64, work: WorkFn<T>);

    /// Units submitted but not yet emitted (queued + running).
    fn queue_depth(&self) -> usize;
}

/// What the worker threads share.
struct Shared<T> {
    state: Mutex<QueueState<T>>,
    /// Signals workers (new work / shutdown) and drainers (work done).
    signal: Condvar,
}

struct QueueState<T> {
    queue: VecDeque<(u64, WorkFn<T>)>,
    /// Units popped from the queue and currently executing.
    running: usize,
    shutdown: bool,
}

/// Poison-tolerant lock: a panic on a sibling thread (outside the worker
/// fence) must not wedge the queue.
fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, QueueState<T>> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The sync job-queue executor: `workers` detached `std::thread`s pulling
/// from one shared queue, emitting each finished unit on the `sink`
/// channel passed at construction.
///
/// See the [module docs](self) for the design rationale and an example.
pub struct ThreadPool<T> {
    shared: Arc<Shared<T>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl<T: Send + 'static> ThreadPool<T> {
    /// Spawns `workers` threads (at least one) feeding `sink`. A unit of
    /// work that panics past its own fences is converted to an emission
    /// by `on_panic(ticket, panic_message)` — every submitted ticket is
    /// answered, panic or not.
    pub fn new(
        workers: usize,
        sink: Sender<Emission<T>>,
        on_panic: impl Fn(u64, String) -> T + Send + Sync + 'static,
    ) -> ThreadPool<T> {
        install_quiet_panic_hook();
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                running: 0,
                shutdown: false,
            }),
            signal: Condvar::new(),
        });
        let on_panic = Arc::new(on_panic);
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let sink = sink.clone();
                let on_panic = Arc::clone(&on_panic);
                std::thread::spawn(move || worker_loop(&shared, &sink, &*on_panic))
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            workers,
        }
    }

    /// How many worker threads the pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Blocks until every unit submitted so far has been emitted. New
    /// submissions during the wait extend it.
    pub fn drain(&self) {
        let mut st = lock(&self.shared);
        while !st.queue.is_empty() || st.running > 0 {
            st = self
                .shared
                .signal
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drains outstanding work, then stops and joins the worker threads.
    pub fn shutdown(mut self) {
        self.drain();
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
        }
        self.shared.signal.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<T> Drop for ThreadPool<T> {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still stops the workers (they
        // finish in-flight units first); we just don't block to join.
        let mut st = lock(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.signal.notify_all();
    }
}

impl<T: Send + 'static> JobExecutor<T> for ThreadPool<T> {
    fn submit(&self, ticket: u64, work: WorkFn<T>) {
        {
            let mut st = lock(&self.shared);
            st.queue.push_back((ticket, work));
        }
        self.shared.signal.notify_all();
    }

    fn queue_depth(&self) -> usize {
        let st = lock(&self.shared);
        st.queue.len() + st.running
    }
}

fn worker_loop<T>(
    shared: &Shared<T>,
    sink: &Sender<Emission<T>>,
    on_panic: &(dyn Fn(u64, String) -> T + Send + Sync),
) {
    loop {
        let item = {
            let mut st = lock(shared);
            loop {
                if let Some(item) = st.queue.pop_front() {
                    st.running += 1;
                    break Some(item);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.signal.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((ticket, work)) = item else { return };
        // The worker fence: a panicking unit is converted to a payload,
        // never a dead thread or a missing emission.
        FENCED.with(|f| f.set(true));
        let payload = catch_unwind(AssertUnwindSafe(work))
            .unwrap_or_else(|p| on_panic(ticket, panic_message(p.as_ref())));
        FENCED.with(|f| f.set(false));
        let _ = sink.send(Emission { ticket, payload });
        let mut st = lock(shared);
        st.running -= 1;
        drop(st);
        shared.signal.notify_all();
    }
}

std::thread_local! {
    /// `true` while this thread is inside a worker's `catch_unwind`
    /// fence — panics there are caught, classified and reported in the
    /// emission, so the default print-a-backtrace hook only adds noise.
    static FENCED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once per process) a panic hook that stays silent for panics
/// the executor is about to catch and defers to the previous hook for
/// everything else.
pub(crate) fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !FENCED.with(|f| f.get()) {
                previous(info);
            }
        }));
    });
}

/// Marks the current thread as fenced for the duration of `f`, keeping
/// the quiet panic hook in effect for fences outside the worker loop
/// (the retry loop runs its own `catch_unwind`).
fn fenced<R>(f: impl FnOnce() -> R) -> R {
    FENCED.with(|c| c.set(true));
    let r = f();
    FENCED.with(|c| c.set(false));
    r
}

/// Best-effort rendering of a panic payload (`&str` and `String` cover
/// every panic the workspace raises).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One fully resolved unit of fleet work: what a worker needs to run the
/// job, independent of where the spec came from.
pub struct ResolvedJob {
    /// The job's report name.
    pub name: String,
    /// The materialized model, or the build error that quarantines the
    /// job without running anything.
    pub model: Result<RtModel, FleetError>,
    /// Effective delta-cycle budget (batch and per-job budgets already
    /// reconciled — the smaller wins).
    pub delta_budget: Option<u64>,
    /// The engine this job executes on.
    pub backend: Backend,
    /// Optimization level for the compiled engine (ignored by the
    /// interpreter; reports stay byte-identical across levels).
    pub opt: OptLevel,
    /// Value-checking program evaluated alongside the run, if any.
    pub check: Option<Arc<CheckProgram>>,
    /// Deliberate misbehaviour to trip inside the worker fence, if any.
    pub chaos: Option<ChaosProbe>,
}

impl ResolvedJob {
    /// Resolves a [`JobSpec`] under `config` (reading files, running
    /// HLS, reconciling budgets and backend overrides). Resolution
    /// errors are captured in [`ResolvedJob::model`], not returned — the
    /// executor quarantines them per-job.
    pub fn from_spec(spec: &JobSpec, config: &FleetConfig) -> ResolvedJob {
        ResolvedJob {
            name: spec.name.clone(),
            model: spec.resolve(),
            delta_budget: min_budget(config.delta_budget, spec.delta_budget),
            backend: config.backend.or(spec.backend).unwrap_or_default(),
            opt: config.opt,
            check: config.check.clone(),
            chaos: match spec.source {
                JobSource::Chaos(p) => Some(p),
                _ => None,
            },
        }
    }

    /// Wraps an already-built model (the daemon's plan-cache path).
    pub fn from_model(
        name: impl Into<String>,
        model: RtModel,
        config: &FleetConfig,
    ) -> ResolvedJob {
        ResolvedJob {
            name: name.into(),
            model: Ok(model),
            delta_budget: config.delta_budget,
            backend: config.backend.unwrap_or_default(),
            opt: config.opt,
            check: config.check.clone(),
            chaos: None,
        }
    }
}

/// The smaller of two optional budgets (absent means unbounded).
pub(crate) fn min_budget(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Classifies a kernel error under the configured budgets — the one
/// mapping every executor caller must agree on.
///
/// The delta limit only classifies as a budget failure when a budget was
/// actually configured; at the kernel's default runaway limit it is an
/// ordinary run failure (oscillation).
pub fn classify_kernel_error(e: &KernelError, delta_budget: Option<u64>) -> FailureKind {
    match e {
        KernelError::DeltaOverflow { .. } if delta_budget.is_some() => FailureKind::DeltaBudget,
        KernelError::WallBudgetExceeded { .. } => FailureKind::WallBudget,
        _ => FailureKind::Run,
    }
}

/// Runs one resolved job to a classified outcome: panic-fenced, retried
/// up to `config.max_retries`, failures quarantined as
/// [`JobOutcome::Failed`]. This is the quarantine/retry/budget machinery
/// both the batch engine and the serve daemon execute jobs through.
pub fn execute_job(job: &ResolvedJob, config: &FleetConfig) -> JobOutcome {
    let model = match &job.model {
        Ok(m) => m,
        Err(e) => {
            // Build failures are deterministic; retrying would re-parse
            // the same bytes.
            return JobOutcome::Failed(JobFailure {
                name: job.name.clone(),
                kind: FailureKind::Build,
                error: build_error_text(e),
                retries: 0,
                stats: clockless_kernel::SimStats::default(),
            });
        }
    };
    let mut attempt: u64 = 0;
    loop {
        let run = fenced(|| {
            catch_unwind(AssertUnwindSafe(|| {
                run_job(
                    &job.name,
                    model,
                    job.delta_budget,
                    config.wall_budget,
                    job.backend,
                    job.opt,
                    job.check.as_deref(),
                    job.chaos,
                )
            }))
        });
        let failure = match run {
            Ok(Ok(mut result)) => {
                result.stats.retries = attempt;
                return JobOutcome::Ok(Box::new(result));
            }
            Ok(Err((kind, error))) => (kind, error),
            Err(payload) => (FailureKind::Panicked, panic_message(payload.as_ref())),
        };
        if attempt >= u64::from(config.max_retries) {
            // The partial work is deterministic only for a delta-budget
            // exhaustion (the run burned exactly the budget); other
            // failure kinds carry no reproducible counters.
            let stats = clockless_kernel::SimStats {
                delta_cycles: match failure.0 {
                    FailureKind::DeltaBudget => job.delta_budget.unwrap_or(0),
                    _ => 0,
                },
                retries: attempt,
                ..Default::default()
            };
            return JobOutcome::Failed(JobFailure {
                name: job.name.clone(),
                kind: failure.0,
                error: failure.1,
                retries: attempt,
                stats,
            });
        }
        attempt += 1;
    }
}

/// Extracts the message a job's resolution error carries, without the
/// job-name prefix the report row already provides.
fn build_error_text(e: &FleetError) -> String {
    match e {
        FleetError::Build { msg, .. } | FleetError::Io { msg, .. } => msg.clone(),
        other => other.to_string(),
    }
}

/// Runs one job on a fresh, private engine instance of the selected
/// backend (always traced, so conflict diagnoses are available in the
/// report), enforcing the configured budgets and evaluating the value
/// checkers when a program is armed.
#[allow(clippy::too_many_arguments)]
fn run_job(
    name: &str,
    model: &RtModel,
    delta_budget: Option<u64>,
    wall_budget: Option<Duration>,
    backend: Backend,
    opt: OptLevel,
    check: Option<&CheckProgram>,
    chaos: Option<ChaosProbe>,
) -> Result<JobResult, (FailureKind, String)> {
    if let Some(probe) = chaos {
        probe.trip();
    }
    let t0 = Instant::now();
    let options = ExecOptions {
        trace: true,
        delta_limit: delta_budget,
        deadline: wall_budget.map(|d| t0 + d),
        opt,
    };
    let (summary, check) = match check {
        Some(program) => {
            let (outcome, verdict) =
                execute_checked(model, backend, &options, program).map_err(|e| match e {
                    CheckedError::Kernel(k) => {
                        (classify_kernel_error(&k, delta_budget), k.to_string())
                    }
                    other => (FailureKind::Run, other.to_string()),
                })?;
            (outcome.summary, Some(verdict))
        }
        None => {
            let summary = backend
                .execute(model, &options)
                .map(|outcome| outcome.summary)
                .map_err(|e| (classify_kernel_error(&e, delta_budget), e.to_string()))?;
            (summary, None)
        }
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;
    Ok(JobResult {
        name: name.to_string(),
        model: model.name().to_string(),
        cs_max: model.cs_max(),
        tuples: model.tuples().len(),
        stats: summary.stats,
        registers: summary.registers,
        conflicts: summary.conflicts.expect("traced run records conflicts"),
        wall_ns,
        check,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn pool(workers: usize, sink: Sender<Emission<String>>) -> ThreadPool<String> {
        ThreadPool::new(workers, sink, |_, msg| format!("panic:{msg}"))
    }

    #[test]
    fn emissions_cover_every_ticket() {
        let (tx, rx) = mpsc::channel();
        let p = pool(3, tx);
        for t in 0..16u64 {
            p.submit(t, Box::new(move || format!("r{t}")));
        }
        p.drain();
        let mut got: Vec<u64> = rx.try_iter().map(|e| e.ticket).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        p.shutdown();
    }

    #[test]
    fn panicking_work_is_fenced_and_answered() {
        let (tx, rx) = mpsc::channel();
        let p = pool(2, tx);
        p.submit(7, Box::new(|| panic!("deliberate")));
        p.submit(8, Box::new(|| "fine".to_string()));
        p.drain();
        let mut got: Vec<(u64, String)> = rx.try_iter().map(|e| (e.ticket, e.payload)).collect();
        got.sort();
        assert_eq!(got[0], (7, "panic:deliberate".to_string()));
        assert_eq!(got[1], (8, "fine".to_string()));
        p.shutdown();
    }

    #[test]
    fn queue_depth_counts_queued_and_running() {
        let (tx, rx) = mpsc::channel();
        let p = pool(1, tx);
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let hold_rx = std::sync::Mutex::new(hold_rx);
        p.submit(
            0,
            Box::new(move || {
                let _ = hold_rx.lock().unwrap().recv();
                "held".to_string()
            }),
        );
        p.submit(1, Box::new(|| "queued".to_string()));
        // One unit is blocked running, one is queued behind it.
        while p.queue_depth() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(p.queue_depth(), 2);
        hold_tx.send(()).unwrap();
        p.drain();
        assert_eq!(p.queue_depth(), 0);
        assert_eq!(rx.try_iter().count(), 2);
        p.shutdown();
    }

    #[test]
    fn drain_returns_immediately_when_idle() {
        let (tx, _rx) = mpsc::channel();
        let p = pool(2, tx);
        p.drain();
        p.shutdown();
    }

    #[test]
    fn classify_maps_budget_errors_only_under_a_budget() {
        let overflow = KernelError::DeltaOverflow {
            at: Default::default(),
            limit: 10,
        };
        assert_eq!(
            classify_kernel_error(&overflow, Some(10)),
            FailureKind::DeltaBudget
        );
        assert_eq!(classify_kernel_error(&overflow, None), FailureKind::Run);
    }

    #[test]
    fn min_budget_prefers_the_tighter_cap() {
        assert_eq!(min_budget(None, None), None);
        assert_eq!(min_budget(Some(5), None), Some(5));
        assert_eq!(min_budget(None, Some(9)), Some(9));
        assert_eq!(min_budget(Some(5), Some(9)), Some(5));
        assert_eq!(min_budget(Some(9), Some(5)), Some(5));
    }
}
