#!/usr/bin/env bash
# Local CI gate, offline-safe: everything here resolves without registry
# access. Run from the repo root (or anywhere inside it).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests"
cargo test -q --workspace --offline

echo "== examples build"
cargo build --examples --offline

echo "== rustdoc (workspace, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== bench crate (build + unit tests; benches run via 'cargo bench')"
cargo test -q --manifest-path crates/bench/Cargo.toml --offline
cargo build --benches --manifest-path crates/bench/Cargo.toml --offline

echo "== fault-campaign smoke (stuck/drivers must detect, never corrupt silently)"
faults_out="$(./target/release/clockless faults models/fig1.rtl --classes stuck,drivers)"
grep -q "detected (100%)" <<<"$faults_out"
grep -q "0 silent" <<<"$faults_out"
grep -q "detected: ILLEGAL" <<<"$faults_out"

echo "== value-checker coverage gate (checkers all must close the silent-corruption gap)"
checked_out="$(./target/release/clockless faults models/fig1.rtl --checkers all)"
grep -q "9 detected (100%)" <<<"$checked_out"
grep -q "0 silent" <<<"$checked_out"
# Per-class floors: the baseline-blind classes must be fully covered,
# and the report must show the baseline they improved on.
grep -q "drops    1/1 detected (baseline 0)" <<<"$checked_out"
grep -q "skews    2/2 detected (baseline 0)" <<<"$checked_out"
grep -q "inits    2/2 detected (baseline 0)" <<<"$checked_out"
grep -q "value monitor" <<<"$checked_out"
# Sanity: with checkers off the same campaign leaves silent corruption.
unchecked_out="$(./target/release/clockless faults models/fig1.rtl)"
grep -q "5 silent" <<<"$unchecked_out"

echo "== mine/check round trip (mined invariants hold on the clean run, artifact is canonical)"
mine_dir="$(mktemp -d)"
./target/release/clockless mine models/fig1.rtl > "$mine_dir/inv.json"
grep -q '"kind": "range"' "$mine_dir/inv.json"
check_out="$(./target/release/clockless run models/fig1.rtl --check "$mine_dir/inv.json")"
grep -q "value checks against .*: clean" <<<"$check_out"
./target/release/clockless run models/fig1.rtl --check "$mine_dir/inv.json" --backend compiled >/dev/null
# A violated artifact must fail the run with the violation site.
sed 's/"max": 7/"max": 5/' "$mine_dir/inv.json" > "$mine_dir/bad.json"
bad_status=0
bad_out="$(./target/release/clockless run models/fig1.rtl --check "$mine_dir/bad.json" 2>&1)" || bad_status=$?
[ "$bad_status" -eq 1 ]
grep -q "invariant \`R1 in \[3, 5\]\` violated" <<<"$bad_out"
rm -rf "$mine_dir"

echo "== fleet quarantine smoke (hostile batch completes, failures quarantined)"
fleet_status=0
fleet_out="$(./target/release/clockless fleet models/chaos.fleet --jobs 4 2>&1)" || fleet_status=$?
[ "$fleet_status" -eq 1 ]
grep -q "2 job(s) quarantined" <<<"$fleet_out"
grep -q "panicked" <<<"$fleet_out"
grep -q "delta-budget-exceeded" <<<"$fleet_out"

echo "== backend sweep (compiled engine must be byte-identical to interpreted)"
for model in models/*.rtl; do
  interp_status=0 compiled_status=0
  interp_out="$(./target/release/clockless run "$model" --trace 2>&1)" || interp_status=$?
  compiled_out="$(./target/release/clockless run "$model" --trace --backend compiled 2>&1)" || compiled_status=$?
  [ "$interp_status" -eq "$compiled_status" ]
  [ "$interp_out" = "$compiled_out" ]
done
faults_interp="$(./target/release/clockless faults models/fig1.rtl --seed 7 --json)"
faults_compiled="$(./target/release/clockless faults models/fig1.rtl --seed 7 --json --backend compiled)"
[ "$faults_interp" = "$faults_compiled" ]

echo "== opt-level sweep (-O0/1/2 must be byte-identical end to end)"
for model in models/*.rtl; do
  o0_status=0
  o0_out="$(./target/release/clockless run "$model" --trace --backend compiled --opt 0 2>&1)" || o0_status=$?
  for lvl in 1 2; do
    lvl_status=0
    lvl_out="$(./target/release/clockless run "$model" --trace --backend compiled --opt "$lvl" 2>&1)" || lvl_status=$?
    [ "$o0_status" -eq "$lvl_status" ]
    [ "$o0_out" = "$lvl_out" ]
  done
done
# Campaign and fleet reports carry the same obligation: the optimized
# stream (solo and batched-lockstep alike) must not leak into the JSON.
faults_o0="$(./target/release/clockless faults models/iks_fir.rtl --json --backend compiled --opt 0)"
faults_o2="$(./target/release/clockless faults models/iks_fir.rtl --json --backend compiled --opt 2)"
[ "$faults_o0" = "$faults_o2" ]
fleet_o0="$(./target/release/clockless fleet models/demo.fleet --jobs 2 --json --backend compiled --opt 0)"
fleet_o2="$(./target/release/clockless fleet models/demo.fleet --jobs 2 --json --backend compiled --opt 2)"
[ "$fleet_o0" = "$fleet_o2" ]

echo "== campaign engine sweep (batched engine must be byte-identical to legacy)"
for model in models/*.rtl; do
  faults_batched="$(./target/release/clockless faults "$model" --json)"
  faults_legacy="$(./target/release/clockless faults "$model" --json --engine legacy)"
  [ "$faults_batched" = "$faults_legacy" ]
done
faults_batched_compiled="$(./target/release/clockless faults models/iks_fir.rtl --json --backend compiled)"
faults_legacy_compiled="$(./target/release/clockless faults models/iks_fir.rtl --json --engine legacy --backend compiled)"
[ "$faults_batched_compiled" = "$faults_legacy_compiled" ]
# Checked campaigns carry the same obligation: engines and backends must
# agree byte-for-byte with the value checkers armed.
for model in models/fig1.rtl models/iks_fir.rtl; do
  checked_batched="$(./target/release/clockless faults "$model" --json --checkers all)"
  checked_legacy="$(./target/release/clockless faults "$model" --json --checkers all --engine legacy --jobs 3)"
  checked_compiled="$(./target/release/clockless faults "$model" --json --checkers all --backend compiled)"
  [ "$checked_batched" = "$checked_legacy" ]
  [ "$checked_batched" = "$checked_compiled" ]
done
fleet_interp="$(./target/release/clockless fleet models/demo.fleet --jobs 2 --json)"
fleet_compiled="$(./target/release/clockless fleet models/demo.fleet --jobs 2 --json --backend compiled)"
[ "$fleet_interp" = "$fleet_compiled" ]

echo "== differential fuzz smoke (seeded zoo, zero divergences, reproducible report)"
fuzz_out="$(./target/release/clockless fuzz --seed 3238796885 --count 250)"
grep -q "fuzzed 250 models" <<<"$fuzz_out"
grep -q "no divergences" <<<"$fuzz_out"
fuzz_json="$(./target/release/clockless fuzz --seed 3238796885 --count 250 --json)"
fuzz_json2="$(./target/release/clockless fuzz --seed 3238796885 --count 250 --json)"
[ "$fuzz_json" = "$fuzz_json2" ]
grep -q '"divergence_count": 0' <<<"$fuzz_json"

echo "== serve smoke (daemon payloads byte-identical to one-shot CLI, clean shutdown)"
serve_sock="$(mktemp -d)/ci.sock"
./target/release/clockless serve --socket "$serve_sock" 2>/dev/null &
serve_pid=$!
for _ in $(seq 1 200); do [ -S "$serve_sock" ] && break; sleep 0.05; done
[ -S "$serve_sock" ]
serve_run="$(echo '{"id":1,"op":"run","path":"models/fig1.rtl"}' \
  | ./target/release/clockless client "$serve_sock" --payload)"
cli_run="$(./target/release/clockless run models/fig1.rtl --json)"
[ "$serve_run" = "$cli_run" ]
serve_faults="$(echo '{"id":2,"op":"faults","path":"models/fig1.rtl","seed":7}' \
  | ./target/release/clockless client "$serve_sock" --payload)"
cli_faults="$(./target/release/clockless faults models/fig1.rtl --seed 7 --json)"
[ "$serve_faults" = "$cli_faults" ]
serve_checked="$(echo '{"id":4,"op":"faults","path":"models/fig1.rtl","checkers":"all"}' \
  | ./target/release/clockless client "$serve_sock" --payload)"
cli_checked="$(./target/release/clockless faults models/fig1.rtl --json --checkers all)"
[ "$serve_checked" = "$cli_checked" ]
grep -q '"checkers": "all"' <<<"$serve_checked"
# A request pinning any -O level must return the exact default payload.
serve_run_o0="$(echo '{"id":5,"op":"run","path":"models/fig1.rtl","opt":0}' \
  | ./target/release/clockless client "$serve_sock" --payload)"
[ "$serve_run_o0" = "$cli_run" ]
echo '{"id":3,"op":"shutdown"}' | ./target/release/clockless client "$serve_sock" >/dev/null
wait "$serve_pid"
[ ! -e "$serve_sock" ]
rm -rf "$(dirname "$serve_sock")"

echo "CI OK"
