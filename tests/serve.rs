//! End-to-end tests of the serve daemon and the executor refactor:
//!
//! * golden regression — the fleet CLI's JSON reports are pinned to
//!   pre-refactor captures in `tests/golden/`, at worker counts 1 and 4
//!   (the batch engine is now a thin caller of the shared job-queue
//!   executor; its output must not have moved by a byte), and
//! * daemon/CLI byte-identity — `run`/`faults`/`fleet` payloads decoded
//!   from daemon response envelopes diff clean against the matching
//!   one-shot CLI documents, over both stdio and a Unix socket.

use std::io::Write as _;
use std::path::Path;
use std::process::{Command, Stdio};

use clockless::serve::{decode_payload, Json};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_clockless"))
}

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

/// Runs the CLI, asserting the expected exit status, and returns stdout.
fn cli_stdout(args: &[&str], expect_success: bool) -> String {
    let out = cli().args(args).output().expect("binary runs");
    assert_eq!(out.status.success(), expect_success, "{out:?}");
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

// ------------------------------------------------- executor refactor goldens

/// The demo batch (clean jobs over all three job sources) must render
/// byte-identically to the pre-refactor golden at any worker count.
#[test]
fn fleet_demo_report_matches_pre_refactor_golden() {
    let golden =
        std::fs::read_to_string(repo_path("tests/golden/fleet_demo.json")).expect("golden present");
    for jobs in ["1", "4"] {
        let stdout = cli_stdout(
            &[
                "fleet",
                &repo_path("models/demo.fleet"),
                "--jobs",
                jobs,
                "--json",
            ],
            true,
        );
        assert_eq!(stdout, golden, "demo report drifted at --jobs {jobs}");
    }
}

/// The hostile batch (panicking chaos probe, blown budget, conflicts)
/// exercises the quarantine path through the executor; report pinned
/// the same way. Exit code stays 1 — failures quarantined, not hidden.
#[test]
fn fleet_chaos_report_matches_pre_refactor_golden() {
    let golden = std::fs::read_to_string(repo_path("tests/golden/fleet_chaos.json"))
        .expect("golden present");
    for jobs in ["1", "4"] {
        let stdout = cli_stdout(
            &[
                "fleet",
                &repo_path("models/chaos.fleet"),
                "--jobs",
                jobs,
                "--json",
            ],
            false,
        );
        assert_eq!(stdout, golden, "chaos report drifted at --jobs {jobs}");
    }
}

// ------------------------------------------------------------- run --json

#[test]
fn run_json_renders_the_shared_report() {
    let doc = cli_stdout(&["run", &repo_path("models/fig1.rtl"), "--json"], true);
    assert!(doc.contains("\"model\": \"fig1\""), "{doc}");
    assert!(
        doc.contains("{\"name\": \"R1\", \"value\": \"7\"}"),
        "{doc}"
    );
    assert!(doc.ends_with("\"conflicts\": []\n}\n"), "{doc}");
    // Backend choice never changes the document.
    let compiled = cli_stdout(
        &[
            "run",
            &repo_path("models/fig1.rtl"),
            "--json",
            "--backend",
            "compiled",
        ],
        true,
    );
    assert_eq!(doc, compiled);
}

// ------------------------------------------------- daemon vs CLI, stdio

/// Drives `clockless serve` (stdio mode) with request lines, returns
/// the response lines.
fn serve_stdio(requests: &str) -> Vec<String> {
    let mut child = cli()
        .arg("serve")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(requests.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "{out:?}");
    String::from_utf8(out.stdout)
        .expect("utf-8 responses")
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn daemon_payloads_are_byte_identical_to_one_shot_cli() {
    let fig1 = repo_path("models/fig1.rtl");
    let demo = repo_path("models/demo.fleet");
    let requests = format!(
        "{{\"id\":1,\"op\":\"run\",\"path\":\"{fig1}\"}}\n\
         {{\"id\":2,\"op\":\"faults\",\"path\":\"{fig1}\",\"seed\":7}}\n\
         {{\"id\":3,\"op\":\"fleet\",\"path\":\"{demo}\",\"jobs\":4}}\n"
    );
    let lines = serve_stdio(&requests);
    assert_eq!(lines.len(), 3, "{lines:?}");

    let cli_run = cli_stdout(&["run", &fig1, "--json"], true);
    let cli_faults = cli_stdout(&["faults", &fig1, "--seed", "7", "--json"], true);
    let cli_fleet = cli_stdout(&["fleet", &demo, "--jobs", "4", "--json"], true);

    assert_eq!(decode_payload(&lines[0]).as_deref(), Some(cli_run.as_str()));
    assert_eq!(
        decode_payload(&lines[1]).as_deref(),
        Some(cli_faults.as_str())
    );
    assert_eq!(
        decode_payload(&lines[2]).as_deref(),
        Some(cli_fleet.as_str())
    );
}

#[test]
fn daemon_quarantines_hostile_batches_and_keeps_serving() {
    let chaos = repo_path("models/chaos.fleet");
    let requests = format!(
        "{{\"id\":1,\"op\":\"fleet\",\"path\":\"{chaos}\",\"jobs\":2}}\n\
         {{\"id\":2,\"op\":\"ping\"}}\n"
    );
    let lines = serve_stdio(&requests);
    assert_eq!(lines.len(), 2, "{lines:?}");
    // The hostile batch still answers ok:true — failures are quarantined
    // rows inside the payload, exactly as on the CLI (which exits 1 with
    // the same stdout).
    let payload = decode_payload(&lines[0]).expect("fleet payload");
    let golden = std::fs::read_to_string(repo_path("tests/golden/fleet_chaos.json"))
        .expect("golden present");
    assert_eq!(payload, golden);
    assert_eq!(decode_payload(&lines[1]).as_deref(), Some("pong\n"));
}

#[test]
fn daemon_reports_cache_hits_and_errors_in_stats() {
    let fig1 = repo_path("models/fig1.rtl");
    let requests = format!(
        "{{\"id\":1,\"op\":\"run\",\"path\":\"{fig1}\"}}\n\
         {{\"id\":2,\"op\":\"run\",\"path\":\"{fig1}\"}}\n\
         not even json\n\
         {{\"id\":4,\"op\":\"stats\"}}\n"
    );
    let lines = serve_stdio(&requests);
    assert_eq!(lines.len(), 4, "{lines:?}");
    let envelope = Json::parse(&lines[2]).expect("error envelope is JSON");
    assert_eq!(envelope.get("ok").and_then(Json::as_bool), Some(false));
    let stats = Json::parse(&decode_payload(&lines[3]).expect("stats payload"))
        .expect("stats document is JSON");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    let jobs = stats.get("jobs").expect("jobs block");
    assert_eq!(jobs.get("errors").and_then(Json::as_u64), Some(1));
}

// ------------------------------------------------ daemon over a Unix socket

#[test]
fn socket_daemon_serves_clients_across_connections() {
    let socket =
        std::env::temp_dir().join(format!("clockless-serve-it-{}.sock", std::process::id()));
    let mut daemon = cli()
        .args(["serve", "--socket", &socket.to_string_lossy()])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon starts");
    for _ in 0..400 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let client = |requests: &str, payload_only: bool| -> String {
        let mut args = vec!["client".to_string(), socket.to_string_lossy().into_owned()];
        if payload_only {
            args.push("--payload".to_string());
        }
        let mut child = cli()
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("client starts");
        child
            .stdin
            .take()
            .expect("stdin piped")
            .write_all(requests.as_bytes())
            .expect("requests written");
        let out = child.wait_with_output().expect("client exits");
        assert!(out.status.success(), "{out:?}");
        String::from_utf8(out.stdout).expect("utf-8")
    };

    // Connection 1: run a model, payload-only output.
    let fig1 = repo_path("models/fig1.rtl");
    let doc = client(
        &format!("{{\"id\":1,\"op\":\"run\",\"path\":\"{fig1}\"}}\n"),
        true,
    );
    let cli_doc = cli_stdout(&["run", &fig1, "--json"], true);
    assert_eq!(doc, cli_doc, "socket payload differs from one-shot CLI");

    // Connection 2: the same model is now a cache hit, then shutdown.
    let text = client(
        &format!(
            "{{\"id\":1,\"op\":\"run\",\"path\":\"{fig1}\"}}\n\
             {{\"id\":2,\"op\":\"stats\"}}\n\
             {{\"id\":3,\"op\":\"shutdown\"}}\n"
        ),
        false,
    );
    let stats_line = text
        .lines()
        .find(|l| l.contains("\"op\":\"stats\""))
        .expect("stats response");
    let stats = Json::parse(&decode_payload(stats_line).expect("payload")).expect("JSON");
    let cache = stats.get("cache").expect("cache block");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));

    let status = daemon.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "{status:?}");
    assert!(!socket.exists(), "socket file cleaned up");
}
