//! Quickstart: the paper's Fig. 1 example, end to end.
//!
//! Builds the two-register/one-adder model of §2.7, runs it, and prints
//! the phase-by-phase activity — the clearest way to see the six-phase
//! control-step scheme (Fig. 2) and the delta-cycle timing claim at work.
//!
//! Run with: `cargo run --example quickstart`

use clockless::core::prelude::*;
use clockless::kernel::StepOutcome;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The model of Fig. 1: in control step 5, route R1 over bus B1 and R2
    // over B2 into the pipelined adder; in step 6, route the sum over B1
    // back into R1.
    let mut model = RtModel::new("fig1", 7);
    model.add_register_init("R1", Value::Num(3))?;
    model.add_register_init("R2", Value::Num(4))?;
    model.add_bus("B1")?;
    model.add_bus("B2")?;
    model.add_module(ModuleDecl::single(
        "ADD",
        Op::Add,
        ModuleTiming::Pipelined { latency: 1 },
    ))?;
    let tuple: TransferTuple = "(R1,B1,R2,B2,5,ADD,6,B1,R1)".parse()?;
    println!("register transfer: {tuple}");
    for spec in tuple.expand() {
        println!("  TRANS instance {:<16} {spec}", spec.instance_name());
    }
    model.add_transfer(tuple)?;

    // Walk the simulation delta by delta, printing the interesting ones.
    let mut sim = RtSimulation::traced(&model)?;
    println!("\ndelta-by-delta activity (one delta cycle per phase):");
    loop {
        match sim.step_delta()? {
            StepOutcome::Quiescent => break,
            _ => {
                let Some(pt) = sim.phase_time() else { continue };
                let b1 = sim.bus_value("B1").expect("bus exists");
                let add = sim.module_out("ADD").expect("module exists");
                let r1 = sim.register_value("R1").expect("register exists");
                if b1 != Value::Disc || add != Value::Disc || pt.step >= 5 {
                    println!("  {pt:<18}  B1={b1:<6} ADD_out={add:<6} R1={r1}");
                }
            }
        }
    }

    let stats = sim.stats();
    println!("\nfinal register values:");
    for (name, value) in sim.registers() {
        println!("  {name} = {value}");
    }
    println!("\nkernel statistics: {stats}");
    println!(
        "expected delta cycles: 1 init + CS_MAX*6 = {}",
        1 + 6 * model.cs_max() as u64
    );
    assert_eq!(sim.register_value("R1"), Some(Value::Num(7)));
    assert_eq!(stats.delta_cycles, 1 + 6 * model.cs_max() as u64);
    println!("\nOK: R1 := R1 + R2 executed without clocks, in pure delta time.");
    Ok(())
}
