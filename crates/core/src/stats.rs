//! Model statistics: resource utilization of a schedule.
//!
//! "At this abstract level of timing resource conflicts can be detected"
//! (§2.1) — and, short of conflicts, resource *pressure* can be measured:
//! how many transfers each step carries, how hot each bus and module
//! runs. These are the numbers a designer iterating on a schedule (or an
//! allocator judging its own output) wants to see.

use std::collections::HashMap;
use std::fmt;

use crate::model::RtModel;
use crate::phase::Step;
use crate::tuples::Endpoint;

/// Utilization statistics for a model's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelStats {
    /// Total control steps (`CS_MAX`).
    pub steps: Step,
    /// Transfer tuples.
    pub tuples: usize,
    /// Transfer-process instances after expansion.
    pub processes: usize,
    /// Steps with no activity at all.
    pub idle_steps: usize,
    /// The busiest step and its transfer-process count.
    pub peak: (Step, usize),
    /// Per-bus number of carrying steps (a bus "carries" in a step when a
    /// transfer asserts onto it).
    pub bus_busy_steps: Vec<(String, usize)>,
    /// Per-module number of initiations.
    pub module_initiations: Vec<(String, usize)>,
}

impl ModelStats {
    /// Fraction of steps with at least one active transfer process.
    pub fn occupancy(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        1.0 - self.idle_steps as f64 / self.steps as f64
    }
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} steps, {} tuples, {} transfer processes, occupancy {:.0}% \
             (peak {} processes in step {})",
            self.steps,
            self.tuples,
            self.processes,
            self.occupancy() * 100.0,
            self.peak.1,
            self.peak.0
        )?;
        writeln!(f, "bus utilization (carrying steps):")?;
        for (name, n) in &self.bus_busy_steps {
            writeln!(f, "  {name:<12} {n}")?;
        }
        writeln!(f, "module initiations:")?;
        for (name, n) in &self.module_initiations {
            writeln!(f, "  {name:<12} {n}")?;
        }
        Ok(())
    }
}

/// Computes utilization statistics for a model.
pub fn model_stats(model: &RtModel) -> ModelStats {
    let mut per_step: HashMap<Step, usize> = HashMap::new();
    let mut bus_steps: HashMap<String, Vec<Step>> = HashMap::new();
    let mut initiations: HashMap<String, usize> = HashMap::new();
    let mut processes = 0usize;

    for tuple in model.tuples() {
        *initiations.entry(tuple.module.clone()).or_insert(0) += 1;
        for spec in tuple.expand() {
            processes += 1;
            *per_step.entry(spec.step).or_insert(0) += 1;
            if let Endpoint::Bus(b) = &spec.dst {
                bus_steps.entry(b.clone()).or_default().push(spec.step);
            }
        }
    }

    let idle_steps = (1..=model.cs_max())
        .filter(|s| !per_step.contains_key(s))
        .count();
    let peak = per_step
        .iter()
        .max_by_key(|(step, n)| (**n, std::cmp::Reverse(**step)))
        .map(|(s, n)| (*s, *n))
        .unwrap_or((0, 0));

    let mut bus_busy_steps: Vec<(String, usize)> = model
        .buses()
        .iter()
        .map(|b| {
            let mut steps = bus_steps.remove(&b.name).unwrap_or_default();
            steps.sort_unstable();
            steps.dedup();
            (b.name.clone(), steps.len())
        })
        .collect();
    bus_busy_steps.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut module_initiations: Vec<(String, usize)> = model
        .modules()
        .iter()
        .map(|m| (m.name.clone(), initiations.get(&m.name).copied().unwrap_or(0)))
        .collect();
    module_initiations.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    ModelStats {
        steps: model.cs_max(),
        tuples: model.tuples().len(),
        processes,
        idle_steps,
        peak,
        bus_busy_steps,
        module_initiations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;

    #[test]
    fn fig1_statistics() {
        let s = model_stats(&fig1_model(1, 2));
        assert_eq!(s.steps, 7);
        assert_eq!(s.tuples, 1);
        assert_eq!(s.processes, 6);
        // Activity only in steps 5 and 6.
        assert_eq!(s.idle_steps, 5);
        assert_eq!(s.peak, (5, 4));
        assert!((s.occupancy() - 2.0 / 7.0).abs() < 1e-9);
        // B1 carries in steps 5 and 6; B2 only in step 5.
        assert_eq!(
            s.bus_busy_steps,
            vec![("B1".to_string(), 2), ("B2".to_string(), 1)]
        );
        assert_eq!(s.module_initiations, vec![("ADD".to_string(), 1)]);
    }

    #[test]
    fn empty_model_statistics() {
        let s = model_stats(&RtModel::new("empty", 4));
        assert_eq!(s.processes, 0);
        assert_eq!(s.idle_steps, 4);
        assert_eq!(s.occupancy(), 0.0);
        assert_eq!(s.peak, (0, 0));
    }

    #[test]
    fn display_renders_tables() {
        let text = model_stats(&fig1_model(1, 2)).to_string();
        assert!(text.contains("occupancy 29%"));
        assert!(text.contains("B1"));
        assert!(text.contains("ADD"));
    }
}
