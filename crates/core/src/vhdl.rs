//! VHDL emission: rendering a model in the paper's own subset.
//!
//! The paper's artifact *is* VHDL source — §2 presents the `CONTROLLER`,
//! `TRANS`, `REG` and module entities and §2.7 the "concrete register
//! transfer model" instantiating them. This module generates that source
//! from an [`RtModel`]: a support package (the `Phase` type, the
//! `DISC`/`ILLEGAL` constants and the resolution function of §2.3), the
//! component entities, and the top-level architecture whose instance
//! names follow the paper's `R1_out_B1_5` convention.
//!
//! The output mirrors the paper's listings formatted for VHDL-1993. We do
//! not ship a VHDL simulator to re-consume it (DESIGN.md records the
//! substitution); the generator's value is bidirectional traceability —
//! every model this library simulates can be inspected as the VHDL the
//! paper would have written for it.

use std::fmt::Write as _;

use crate::model::RtModel;
use crate::op::{Arity, Op};
use crate::resource::ModuleTiming;
use crate::value::Value;

/// Renders the support package: the `Phase` enumeration, the `DISC` and
/// `ILLEGAL` encodings and the resolution function — §2.2/§2.3 verbatim
/// in spirit.
pub fn emit_package() -> String {
    r#"-- Support package for register transfer models without clocks
-- (after M. Mutz, "Register Transfer Level VHDL Models without Clocks",
--  DATE 1998, sections 2.2 and 2.3).
package rt_pkg is
  -- Control step phases (Fig. 2): ra rb cm wa wb cr.
  type Phase is (ra, rb, cm, wa, wb, cr);

  -- Regular values are naturals; two sentinels share the Integer type.
  constant DISC    : Integer := -1;
  constant ILLEGAL : Integer := -2;

  type Integer_Vector is array (natural range <>) of Integer;

  -- The resolution function of section 2.3: DISC if all drivers are
  -- DISC; ILLEGAL on any ILLEGAL or on two or more non-DISC drivers;
  -- otherwise the unique driven value.
  function resolve (drivers : Integer_Vector) return Integer;
  subtype RInteger is resolve Integer;
end package rt_pkg;

package body rt_pkg is
  function resolve (drivers : Integer_Vector) return Integer is
    variable seen : Integer := DISC;
  begin
    for i in drivers'range loop
      if drivers(i) = ILLEGAL then
        return ILLEGAL;
      elsif drivers(i) /= DISC then
        if seen /= DISC then
          return ILLEGAL;
        end if;
        seen := drivers(i);
      end if;
    end loop;
    return seen;
  end function resolve;
end package body rt_pkg;
"#
    .to_string()
}

/// Renders the `CONTROLLER`, `TRANS` and `REG` entities — the paper's
/// §2.2, §2.4 and §2.5 listings.
pub fn emit_components() -> String {
    r#"use work.rt_pkg.all;

-- Section 2.2: the controller drives the cyclic phase scheme with delta
-- delay only; simulation quiesces after CS_MAX control steps.
entity CONTROLLER is
  generic (CS_MAX : Natural);
  port (CS : inout Natural := 0;
        PH : inout Phase := Phase'High);  -- Phase'High = cr
end CONTROLLER;

architecture transfer of CONTROLLER is
begin
  process (PH)
  begin
    if PH = Phase'High then
      if CS < CS_MAX then
        CS <= CS + 1;
        PH <= Phase'Low;                  -- Phase'Low = ra
      end if;
    else
      PH <= Phase'Succ(PH);
    end if;
  end process;
end transfer;

use work.rt_pkg.all;

-- Section 2.4: a transfer process assigns its source to its sink at
-- phase P of control step S and releases (DISC) at the next phase.
entity TRANS is
  generic (S : Natural; P : Phase);
  port (CS   : in  Natural;
        PH   : in  Phase;
        InS  : in  Integer;
        OutS : out Integer := DISC);
end TRANS;

architecture transfer of TRANS is
begin
  process
  begin
    wait until CS = S and PH = P;
    OutS <= InS;
    wait until CS = S and PH = Phase'Succ(P);
    OutS <= DISC;
  end process;
end transfer;

use work.rt_pkg.all;

-- Guarded transfer (conditional-transfer extension of section 2.4): the
-- source is forwarded only while the guard signal G is 1; a false guard
-- drives DISC instead, so the driver hand-off — and with it the delta
-- schedule — is identical to the unguarded TRANS.
entity TRANSG is
  generic (S : Natural; P : Phase);
  port (CS   : in  Natural;
        PH   : in  Phase;
        G    : in  Integer;
        InS  : in  Integer;
        OutS : out Integer := DISC);
end TRANSG;

architecture transfer of TRANSG is
begin
  process
  begin
    wait until CS = S and PH = P;
    if G = 1 then
      OutS <= InS;
    else
      OutS <= DISC;
    end if;
    wait until CS = S and PH = Phase'Succ(P);
    OutS <= DISC;
  end process;
end transfer;

use work.rt_pkg.all;

-- Section 2.5: registers fetch at cr whenever a transfer assigned their
-- input port; otherwise the old value is kept.
entity REG is
  port (PH    : in  Phase;
        R_in  : in  Integer;
        R_out : out Integer := DISC);
end REG;

architecture transfer of REG is
begin
  process
  begin
    wait until PH = cr;
    if R_in /= DISC then
      R_out <= R_in;
    end if;
  end process;
end transfer;
"#
    .to_string()
}

/// Errors from VHDL emission.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EmitVhdlError {
    /// An *initiated* operation has no expression in the synthesizable
    /// subset (CORDIC-class operations would be component instantiations
    /// of IP blocks, which this generator does not fabricate). Declared
    /// but never-initiated DSP operations are emitted as opaque IP-core
    /// calls instead: the module's inventory round-trips while its
    /// behavior is never exercised.
    UnsupportedOp(Op),
}

impl std::fmt::Display for EmitVhdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmitVhdlError::UnsupportedOp(op) => {
                write!(f, "operation `{op}` has no VHDL expression in the subset")
            }
        }
    }
}

impl std::error::Error for EmitVhdlError {}

/// The VHDL expression for an operation over `a`/`b` (integer
/// variables), or `None` for DSP operations that would be IP cores.
fn op_expr(op: Op) -> Option<String> {
    Some(match op {
        Op::Add => "a + b".into(),
        Op::Sub => "a - b".into(),
        Op::Mul => "a * b".into(),
        Op::MulFx(f) => format!("(a * b) / {}", 1i64 << f),
        Op::Shr => "to_integer(shift_right(to_signed(a, 64), b))".into(),
        Op::Shl => "to_integer(shift_left(to_signed(a, 64), b))".into(),
        Op::PassA => "a".into(),
        Op::PassB => "b".into(),
        Op::Neg => "-a".into(),
        Op::Abs => "abs a".into(),
        Op::Min => "minimum(a, b)".into(),
        Op::Max => "maximum(a, b)".into(),
        Op::And
        | Op::Or
        | Op::Xor
        | Op::Atan2Fx(_)
        | Op::SqrtFx(_)
        | Op::SinFx(_)
        | Op::CosFx(_) => return None,
    })
}

/// The opaque IP-core call for an operation outside the subset, e.g.
/// `sqrtfx16(a)`. Used only for declared-but-never-initiated operations;
/// the importer maps the mnemonic back to the [`Op`].
fn ip_call(op: Op) -> String {
    match op.arity() {
        Arity::Binary => format!("{}(a, b)", op.mnemonic()),
        Arity::UnaryA => format!("{}(a)", op.mnemonic()),
        Arity::UnaryB => format!("{}(b)", op.mnemonic()),
    }
}

/// The operations actually initiated on a module by the model's transfer
/// tuples (the tuple's explicit op, or the module's only op when the
/// module has no operation-select port).
fn initiated_ops(model: &RtModel, name: &str) -> Vec<Op> {
    let mid = model.module_by_name(name).expect("known module");
    let decl = &model.modules()[mid.0 as usize];
    model
        .tuples()
        .iter()
        .filter(|t| t.module == name)
        .map(|t| t.op.unwrap_or(decl.ops[0]))
        .collect()
}

/// Renders a module entity in the §2.6 style: operands are combined at
/// `cm`, the result travels an internal pipeline variable per latency
/// step (the paper's `M_out <= M; M := …` idiom), multi-operation
/// modules read their operation-select port.
///
/// # Errors
///
/// [`EmitVhdlError::UnsupportedOp`] for DSP operations that some transfer
/// tuple actually initiates. Declared-but-idle DSP operations emit an
/// opaque IP-core call (see [`EmitVhdlError::UnsupportedOp`]).
pub fn emit_module(model: &RtModel, name: &str) -> Result<String, EmitVhdlError> {
    let mid = model
        .module_by_name(name)
        .unwrap_or_else(|| panic!("unknown module `{name}`"));
    let decl = &model.modules()[mid.0 as usize];
    let initiated = initiated_ops(model, name);
    for &op in &decl.ops {
        if op_expr(op).is_none() && initiated.contains(&op) {
            return Err(EmitVhdlError::UnsupportedOp(op));
        }
    }
    let latency = decl.timing.latency();
    let mut out = String::new();
    let _ = writeln!(out, "use work.rt_pkg.all;\n");
    let _ = writeln!(
        out,
        "-- Section 2.6 style module: {} ({}).",
        name,
        match decl.timing {
            ModuleTiming::Combinational => "combinational".to_string(),
            ModuleTiming::Pipelined { latency } => format!("pipelined, latency {latency}"),
            ModuleTiming::Sequential { latency } => format!("sequential, latency {latency}"),
        }
    );
    let _ = writeln!(out, "entity {name} is");
    if decl.needs_op_port() {
        let _ = writeln!(
            out,
            "  port (PH : in Phase; M_in1, M_in2, M_op : in Integer; M_out : out Integer := DISC);"
        );
    } else {
        let _ = writeln!(
            out,
            "  port (PH : in Phase; M_in1, M_in2 : in Integer; M_out : out Integer := DISC);"
        );
    }
    let _ = writeln!(out, "end {name};\n");
    let _ = writeln!(out, "architecture transfer of {name} is\nbegin");
    let _ = writeln!(out, "  process");
    for stage in 1..=latency {
        let _ = writeln!(out, "    variable m{stage} : Integer := DISC;");
    }
    let _ = writeln!(out, "    variable r : Integer;");
    let _ = writeln!(out, "    variable a, b : Integer;");
    let _ = writeln!(out, "  begin");
    let _ = writeln!(out, "    wait until PH = cm;");
    if latency > 0 {
        let _ = writeln!(out, "    M_out <= m{latency};");
        for stage in (2..=latency).rev() {
            let _ = writeln!(out, "    m{stage} := m{};", stage - 1);
        }
    }
    let _ = writeln!(out, "    a := M_in1;  b := M_in2;");
    let _ = writeln!(out, "    if a = ILLEGAL or b = ILLEGAL then");
    let _ = writeln!(out, "      r := ILLEGAL;");
    let _ = writeln!(out, "    elsif a = DISC and b = DISC then");
    let _ = writeln!(out, "      r := DISC;");
    if decl.needs_op_port() {
        let _ = writeln!(out, "    else");
        let _ = writeln!(out, "      case M_op is");
        for (idx, &op) in decl.ops.iter().enumerate() {
            let expr = op_expr(op).unwrap_or_else(|| ip_call(op));
            let guard = match op.arity() {
                Arity::Binary => "a /= DISC and b /= DISC",
                Arity::UnaryA => "a /= DISC and b = DISC",
                Arity::UnaryB => "a = DISC and b /= DISC",
            };
            let _ = writeln!(out, "        when {idx} =>");
            let _ = writeln!(out, "          if {guard} then r := {expr};");
            let _ = writeln!(out, "          else r := ILLEGAL; end if;");
        }
        let _ = writeln!(out, "        when others => r := ILLEGAL;");
        let _ = writeln!(out, "      end case;");
        let _ = writeln!(out, "    end if;");
    } else {
        let op = decl.ops[0];
        let expr = op_expr(op).unwrap_or_else(|| ip_call(op));
        let guard = match op.arity() {
            Arity::Binary => "a /= DISC and b /= DISC",
            Arity::UnaryA => "a /= DISC and b = DISC",
            Arity::UnaryB => "a = DISC and b /= DISC",
        };
        let _ = writeln!(out, "    elsif {guard} then");
        let _ = writeln!(out, "      r := {expr};");
        let _ = writeln!(out, "    else");
        let _ = writeln!(out, "      r := ILLEGAL;");
        let _ = writeln!(out, "    end if;");
    }
    if latency > 0 {
        let _ = writeln!(out, "    m1 := r;");
    } else {
        let _ = writeln!(out, "    M_out <= r;");
    }
    let _ = writeln!(out, "  end process;");
    let _ = writeln!(out, "end transfer;");
    Ok(out)
}

/// Renders the complete design: package, components, module entities and
/// the §2.7 "concrete register transfer model" architecture with the
/// paper's instance naming.
///
/// # Errors
///
/// [`EmitVhdlError::UnsupportedOp`] for initiated DSP operations.
pub fn emit_vhdl(model: &RtModel) -> Result<String, EmitVhdlError> {
    let mut out = String::new();
    out.push_str(&emit_package());
    out.push('\n');
    out.push_str(&emit_components());
    out.push('\n');
    for m in model.modules() {
        out.push_str(&emit_module(model, &m.name)?);
        out.push('\n');
    }

    // The concrete model (§2.7).
    let name = sanitize(model.name());
    let _ = writeln!(out, "use work.rt_pkg.all;\n");
    let _ = writeln!(out, "entity {name} is\nend {name};\n");
    let _ = writeln!(out, "architecture transfer of {name} is");
    // Structured storage map: bracketed storage names are sanitized into
    // VHDL identifiers below; these comments let the importer restore
    // the array/memory declarations and the original names.
    if !model.arrays().is_empty() || !model.memories().is_empty() {
        let _ = writeln!(out, "  -- storage map");
        for a in model.arrays() {
            match a.init {
                Value::Num(v) => {
                    let _ = writeln!(out, "  -- array: {} length {} init {}", a.name, a.len, v);
                }
                _ => {
                    let _ = writeln!(out, "  -- array: {} length {}", a.name, a.len);
                }
            }
        }
        for m in model.memories() {
            match m.init {
                Value::Num(v) => {
                    let _ = writeln!(out, "  -- memory: {} length {} init {}", m.name, m.len, v);
                }
                _ => {
                    let _ = writeln!(out, "  -- memory: {} length {}", m.name, m.len);
                }
            }
        }
        for port in indirect_mem_ports(model) {
            let _ = writeln!(out, "  -- memory port: {port}");
        }
    }
    let _ = writeln!(out, "  -- timing signals");
    let _ = writeln!(out, "  signal CS : Natural;");
    let _ = writeln!(out, "  signal PH : Phase;");
    let _ = writeln!(out, "  -- module ports");
    for m in model.modules() {
        let _ = writeln!(out, "  signal {0}_in1, {0}_in2 : RInteger;", m.name);
        if m.needs_op_port() {
            let _ = writeln!(out, "  signal {0}_op : RInteger;", m.name);
        }
        let _ = writeln!(out, "  signal {0}_out : Integer;", m.name);
    }
    let _ = writeln!(out, "  -- register ports");
    for r in model.registers() {
        let rn = sanitize(&r.name);
        let _ = writeln!(out, "  signal {rn}_in : RInteger;");
        match r.init {
            Value::Num(v) => {
                let _ = writeln!(out, "  signal {rn}_out : Integer := {v};");
            }
            _ => {
                let _ = writeln!(out, "  signal {rn}_out : Integer;");
            }
        }
    }
    for m in model.memories() {
        let _ = writeln!(out, "  -- memory `{}` word ports", m.name);
        for i in 0..m.len {
            let wn = sanitize(&m.word_name(i));
            let _ = writeln!(out, "  signal {wn}_in : RInteger;");
            match m.init {
                Value::Num(v) => {
                    let _ = writeln!(out, "  signal {wn}_out : Integer := {v};");
                }
                _ => {
                    let _ = writeln!(out, "  signal {wn}_out : Integer;");
                }
            }
        }
    }
    for port in indirect_mem_ports(model) {
        let pn = sanitize(&port);
        let _ = writeln!(out, "  signal {pn}_in : RInteger;");
        let _ = writeln!(out, "  signal {pn}_out : Integer;");
    }
    if model.tuples().iter().any(|t| t.guard.is_some()) {
        let _ = writeln!(out, "  -- transfer guards");
        for (k, tuple) in model.tuples().iter().enumerate() {
            if tuple.guard.is_some() {
                let _ = writeln!(out, "  signal g_{k} : Integer := 0;");
            }
        }
    }
    let _ = writeln!(out, "  -- buses");
    for b in model.buses() {
        let _ = writeln!(out, "  signal {0} : RInteger;", b.name);
    }
    let _ = writeln!(out, "begin");
    let _ = writeln!(out, "  -- modules");
    for m in model.modules() {
        if m.needs_op_port() {
            let _ = writeln!(
                out,
                "  {0}_proc : entity work.{0} port map (PH, {0}_in1, {0}_in2, {0}_op, {0}_out);",
                m.name
            );
        } else {
            let _ = writeln!(
                out,
                "  {0}_proc : entity work.{0} port map (PH, {0}_in1, {0}_in2, {0}_out);",
                m.name
            );
        }
    }
    let _ = writeln!(out, "  -- registers");
    for r in model.registers() {
        let rn = sanitize(&r.name);
        let _ = writeln!(
            out,
            "  {rn}_proc : entity work.REG port map (PH, {rn}_in, {rn}_out);"
        );
    }
    for m in model.memories() {
        for i in 0..m.len {
            let wn = sanitize(&m.word_name(i));
            let _ = writeln!(
                out,
                "  {wn}_proc : entity work.REG port map (PH, {wn}_in, {wn}_out);"
            );
        }
    }
    for port in indirect_mem_ports(model) {
        let pn = sanitize(&port);
        let _ = writeln!(
            out,
            "  {pn}_proc : entity work.REG port map (PH, {pn}_in, {pn}_out);"
        );
    }
    if model.tuples().iter().any(|t| t.guard.is_some()) {
        let _ = writeln!(out, "  -- guard conditions");
        for (k, tuple) in model.tuples().iter().enumerate() {
            if let Some(g) = &tuple.guard {
                let _ = writeln!(out, "  g_{k} <= 1 when {} else 0;", guard_condition(g));
            }
        }
    }
    let _ = writeln!(out, "  -- transfers");
    for (k, tuple) in model.tuples().iter().enumerate() {
        for spec in tuple.expand() {
            use crate::tuples::Endpoint;
            let src = match &spec.src {
                Endpoint::ConstOp(op) => {
                    let mid = model.module_by_name(&tuple.module).expect("validated");
                    let idx = model.modules()[mid.0 as usize]
                        .op_index(*op)
                        .expect("validated");
                    idx.to_string()
                }
                other => endpoint_signal(other),
            };
            let dst = endpoint_signal(&spec.dst);
            if tuple.guard.is_some() {
                let _ = writeln!(
                    out,
                    "  {0} : entity work.TRANSG generic map ({1}, {2}) \
                     port map (CS, PH, g_{3}, {4}, {5});",
                    sanitize(&spec.instance_name()),
                    spec.step,
                    spec.phase,
                    k,
                    src,
                    dst
                );
            } else {
                let _ = writeln!(
                    out,
                    "  {0} : entity work.TRANS generic map ({1}, {2}) port map (CS, PH, {3}, {4});",
                    sanitize(&spec.instance_name()),
                    spec.step,
                    spec.phase,
                    src,
                    dst
                );
            }
        }
    }
    let _ = writeln!(out, "  -- controller");
    let _ = writeln!(
        out,
        "  CONTROL : entity work.CONTROLLER generic map ({}) port map (CS, PH);",
        model.cs_max()
    );
    let _ = writeln!(out, "end transfer;");
    Ok(out)
}

/// Distinct register-indirect memory references used by the model's
/// tuples (e.g. `M[R1]`), in first-use order. Each becomes a REG-backed
/// port pair plus a `-- memory port:` comment so the importer can map
/// the sanitized signal back to the bracketed name.
fn indirect_mem_ports(model: &RtModel) -> Vec<String> {
    use crate::tuples::indexed_parts;
    let mut out: Vec<String> = Vec::new();
    let mut push = |name: &str| {
        if let Some((base, idx)) = indexed_parts(name) {
            if model.memory_by_name(base).is_some()
                && idx.parse::<u32>().is_err()
                && !out.iter().any(|n| n == name)
            {
                out.push(name.to_string());
            }
        }
    };
    for t in model.tuples() {
        for route in [&t.src_a, &t.src_b].into_iter().flatten() {
            push(&route.register);
        }
        if let Some(w) = &t.write {
            push(&w.register);
        }
    }
    out
}

/// Renders a guard as a VHDL boolean expression over `_out` register
/// signals, e.g. `R1_out /= 0 and A_1__out >= 3`.
fn guard_condition(g: &crate::tuples::Guard) -> String {
    use crate::tuples::GuardOperand;
    let side = |op: &GuardOperand| match op {
        GuardOperand::Reg(r) => format!("{}_out", sanitize(r)),
        GuardOperand::Const(v) => v.to_string(),
    };
    let body = g
        .clauses
        .iter()
        .map(|c| format!("{} {} {}", side(&c.lhs), c.cmp, side(&c.rhs)))
        .collect::<Vec<_>>()
        .join(" and ");
    if g.negated {
        format!("not ({body})")
    } else {
        body
    }
}

/// The VHDL signal name of an endpoint, matching the §2.7 declarations.
/// Memory-word names contain brackets and are sanitized; the structured
/// comments the emitter writes let the importer restore them.
fn endpoint_signal(e: &crate::tuples::Endpoint) -> String {
    use crate::tuples::{Endpoint, MemAddr};
    match e {
        Endpoint::RegOut(r) => format!("{}_out", sanitize(r)),
        Endpoint::RegIn(r) => format!("{}_in", sanitize(r)),
        Endpoint::Bus(b) => b.clone(),
        Endpoint::ModIn1(m) => format!("{m}_in1"),
        Endpoint::ModIn2(m) => format!("{m}_in2"),
        Endpoint::ModOut(m) => format!("{m}_out"),
        Endpoint::ModOp(m) => format!("{m}_op"),
        Endpoint::MemWord { mem, addr } => match addr {
            MemAddr::Const(i) => format!("{}_out", sanitize(&format!("{mem}[{i}]"))),
            MemAddr::Reg(r) => format!("{mem}_rd_{r}"),
        },
        Endpoint::MemWin(m) => format!("{m}_win"),
        Endpoint::MemWaddr(m) => format!("{m}_waddr"),
        Endpoint::ConstVal(v) => v.to_string(),
        Endpoint::ConstOp(_) => unreachable!("handled by the caller"),
    }
}

/// Turns a storage name into a VHDL identifier: non-alphanumeric
/// characters become `_` (so `A[0]` → `A_0_`), with a leading `m` when
/// the result would not start with a letter. Shared with the importer,
/// which inverts it via the structured storage map comments.
pub(crate) fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| !c.is_alphabetic()) {
        s.insert(0, 'm');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;
    use crate::prelude::*;

    #[test]
    fn package_declares_the_section_2_3_machinery() {
        let pkg = emit_package();
        assert!(pkg.contains("type Phase is (ra, rb, cm, wa, wb, cr);"));
        assert!(pkg.contains("constant DISC    : Integer := -1;"));
        assert!(pkg.contains("constant ILLEGAL : Integer := -2;"));
        assert!(pkg.contains("function resolve"));
    }

    #[test]
    fn components_match_the_paper_listings() {
        let c = emit_components();
        assert!(c.contains("entity CONTROLLER is"));
        assert!(c.contains("generic (CS_MAX : Natural);"));
        assert!(c.contains("wait until CS = S and PH = P;"));
        assert!(c.contains("wait until PH = cr;"));
        assert!(c.contains("if R_in /= DISC then"));
    }

    #[test]
    fn fig1_design_reproduces_the_section_2_7_structure() {
        let vhdl = emit_vhdl(&fig1_model(3, 4)).unwrap();
        // Signal declarations as in the paper's architecture.
        assert!(vhdl.contains("signal ADD_in1, ADD_in2 : RInteger;"));
        assert!(vhdl.contains("signal R1_in : RInteger;"));
        assert!(vhdl.contains("signal B1 : RInteger;"));
        // The six TRANS instances with the paper's names and generics.
        assert!(vhdl.contains(
            "R1_out_B1_5 : entity work.TRANS generic map (5, ra) port map (CS, PH, R1_out, B1);"
        ));
        assert!(vhdl.contains(
            "B1_R1_in_6 : entity work.TRANS generic map (6, wb) port map (CS, PH, B1, R1_in);"
        ));
        // Controller with CS_MAX = 7.
        assert!(vhdl.contains("CONTROL : entity work.CONTROLLER generic map (7)"));
        // The pipelined adder uses the M_out <= M idiom.
        assert!(vhdl.contains("M_out <= m1;"));
    }

    #[test]
    fn multi_op_module_gets_case_statement_and_op_port() {
        let mut m = RtModel::new("alu_demo", 4);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register_init("B", Value::Num(2)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::multi(
            "ALU",
            [Op::Add, Op::Sub, Op::Shr],
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "ALU")
                .src_a("A", "X")
                .src_b("B", "Y")
                .op(Op::Sub)
                .write(2, "W", "T"),
        )
        .unwrap();
        let vhdl = emit_vhdl(&m).unwrap();
        assert!(vhdl.contains("M_in1, M_in2, M_op : in Integer"));
        assert!(vhdl.contains("case M_op is"));
        // The op-select transfer drives the constant index 1 (Sub).
        assert!(vhdl.contains("port map (CS, PH, 1, ALU_op);"));
    }

    #[test]
    fn dsp_operations_are_rejected() {
        let mut m = RtModel::new("dsp", 12);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::single(
            "CORDIC",
            Op::SqrtFx(16),
            ModuleTiming::Sequential { latency: 8 },
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(1, "CORDIC")
                .src_a("A", "X")
                .write(9, "W", "T"),
        )
        .unwrap();
        assert_eq!(
            emit_vhdl(&m),
            Err(EmitVhdlError::UnsupportedOp(Op::SqrtFx(16)))
        );
    }

    #[test]
    fn idle_dsp_operations_emit_ip_calls() {
        // Same CORDIC inventory as `dsp_operations_are_rejected`, but no
        // transfer ever initiates it: emission succeeds with an opaque
        // IP-core call in place of a subset expression.
        let mut m = RtModel::new("dsp_idle", 12);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register_init("B", Value::Num(2)).unwrap();
        m.add_register("T").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_bus("W").unwrap();
        m.add_module(ModuleDecl::single(
            "CORDIC",
            Op::SqrtFx(16),
            ModuleTiming::Sequential { latency: 8 },
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(1, "ADD")
                .src_a("A", "X")
                .src_b("B", "Y")
                .write(1, "W", "T"),
        )
        .unwrap();
        let vhdl = emit_vhdl(&m).unwrap();
        assert!(vhdl.contains("r := sqrtfx16(a);"));
    }

    #[test]
    fn emission_is_deterministic() {
        let a = emit_vhdl(&fig1_model(3, 4)).unwrap();
        let b = emit_vhdl(&fig1_model(3, 4)).unwrap();
        assert_eq!(a, b);
    }
}
