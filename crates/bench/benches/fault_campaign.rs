//! Writes `BENCH_faults.json` at the repository root: throughput of
//! seeded fault-injection campaigns (`clockless_verify::faults`) over
//! the Fig. 1 model and two synthetic HLS schedules, for both campaign
//! engines — the plan-sharing batched executor (single-threaded by
//! construction) and the legacy one-fleet-job-per-mutant path at 1/2/4
//! workers.
//!
//! Per the workspace convention, counters (`faults`, `detected`,
//! `silent`, `coverage`, `deterministic`) are machine-independent;
//! `wall_ns` and the derived `faults_per_sec` are machine-local. The
//! `deterministic` field asserts that every configuration's campaign
//! report is byte-identical to the legacy 1-worker run — seeding plus
//! the engines' differential-equivalence obligation.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use clockless_core::model::fig1_model;
use clockless_core::RtModel;
use clockless_hls::{fir, random_dag, synthesize, ResourceSet};
use clockless_verify::{run_campaign, CampaignConfig, CampaignEngine};

/// One (model, engine, worker-count) measurement.
struct Row {
    model: &'static str,
    engine: CampaignEngine,
    workers: usize,
    faults: usize,
    detected: usize,
    silent: usize,
    coverage: f64,
    wall_ns: u64,
    faults_per_sec: f64,
    deterministic: bool,
}

/// Synthesizes an HLS workload with unconstrained resources and
/// deterministic inputs (mirrors the fleet spec resolver).
fn hls_model(dfg: clockless_hls::Dfg) -> RtModel {
    let resources = ResourceSet::unconstrained(&dfg);
    let names = dfg.inputs();
    let inputs: HashMap<&str, i64> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as i64 + 1))
        .collect();
    synthesize(&dfg, &resources, &inputs)
        .expect("synthesizes")
        .model
}

/// Best-of-3 wall time for one campaign configuration.
fn time_campaign(model: &RtModel, config: &CampaignConfig) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let report = run_campaign(model, config).expect("campaign runs");
        let ns = t.elapsed().as_nanos() as u64;
        std::hint::black_box(report);
        best = best.min(ns);
    }
    best
}

fn main() {
    let targets: [(&'static str, RtModel); 3] = [
        ("fig1", fig1_model(3, 4)),
        (
            "fir12",
            hls_model(fir(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])),
        ),
        ("dag48", hls_model(random_dag(7, 48, 6))),
    ];

    // Legacy runs at 1/2/4 workers; the batched engine executes the
    // whole lockstep walk on one core, so one row tells the story.
    let configs: [(CampaignEngine, &[usize]); 2] = [
        (CampaignEngine::Legacy, &[1usize, 2, 4]),
        (CampaignEngine::Batched, &[1usize]),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, model) in &targets {
        let reference = run_campaign(
            model,
            &CampaignConfig {
                workers: 1,
                engine: CampaignEngine::Legacy,
                ..CampaignConfig::default()
            },
        )
        .expect("campaign runs");
        let reference_json = reference.to_json();
        for (engine, worker_counts) in configs {
            for &workers in worker_counts {
                let config = CampaignConfig {
                    workers,
                    engine,
                    ..CampaignConfig::default()
                };
                let report = run_campaign(model, &config).expect("campaign runs");
                let deterministic = report.to_json() == reference_json;
                assert!(
                    deterministic,
                    "{name} {engine}@{workers} diverged from the legacy 1-worker run"
                );
                let wall_ns = time_campaign(model, &config);
                let faults_per_sec = report.rows.len() as f64 / (wall_ns as f64 / 1e9);
                rows.push(Row {
                    model: name,
                    engine,
                    workers,
                    faults: report.rows.len(),
                    detected: report.detected(),
                    silent: report.silent(),
                    coverage: report.coverage(),
                    wall_ns,
                    faults_per_sec,
                    deterministic,
                });
                eprintln!(
                    "{name:<8} engine={engine:<7} workers={workers} faults={} detected={} \
                     wall={:.3} ms ({:.0} faults/s)",
                    report.rows.len(),
                    report.detected(),
                    wall_ns as f64 / 1e6,
                    faults_per_sec
                );
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench fault_campaign\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"workers\": {}, \"faults\": {}, \
             \"detected\": {}, \"silent\": {}, \"coverage\": {:.4}, \"wall_ns\": {}, \
             \"faults_per_sec\": {:.0}, \"deterministic\": {}}}{}",
            r.model,
            r.engine,
            r.workers,
            r.faults,
            r.detected,
            r.silent,
            r.coverage,
            r.wall_ns,
            r.faults_per_sec,
            r.deterministic,
            comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_faults.json");
    std::fs::write(&path, out).expect("writes BENCH_faults.json");
    eprintln!(
        "fault campaign: {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
