//! Writes `BENCH_faults.json` at the repository root: throughput of
//! seeded fault-injection campaigns (`clockless_verify::faults`) over
//! the Fig. 1 model and two synthetic HLS schedules, for both campaign
//! engines — the plan-sharing batched executor (single-threaded by
//! construction) and the legacy one-fleet-job-per-mutant path at 1/2/4
//! workers — with the value-checking layer off and fully armed.
//!
//! Per the workspace convention, counters (`faults`, `detected`,
//! `silent`, `coverage`, `coverage_by_class`, `deterministic`) are
//! machine-independent; `wall_ns` and the derived `faults_per_sec` are
//! machine-local. The `deterministic` field asserts that every
//! configuration's campaign report is byte-identical to the legacy
//! 1-worker run at the same checker mode — seeding plus the engines'
//! differential-equivalence obligation. The bench additionally asserts
//! the detection claim itself: wherever the baseline detectors leave
//! silent corruption in the drops/skews/inits classes, arming the
//! checkers strictly improves that class's coverage.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use clockless_core::model::fig1_model;
use clockless_core::RtModel;
use clockless_hls::{fir, random_dag, synthesize, ResourceSet};
use clockless_verify::{
    run_campaign, CampaignConfig, CampaignEngine, CampaignReport, CheckerMode, ClassCoverage,
    FaultClass,
};

/// One (model, engine, worker-count, checker-mode) measurement.
struct Row {
    model: &'static str,
    engine: CampaignEngine,
    workers: usize,
    checkers: CheckerMode,
    faults: usize,
    detected: usize,
    silent: usize,
    coverage: f64,
    coverage_by_class: Vec<ClassCoverage>,
    wall_ns: u64,
    faults_per_sec: f64,
    deterministic: bool,
}

/// Synthesizes an HLS workload with unconstrained resources and
/// deterministic inputs (mirrors the fleet spec resolver).
fn hls_model(dfg: clockless_hls::Dfg) -> RtModel {
    let resources = ResourceSet::unconstrained(&dfg);
    let names = dfg.inputs();
    let inputs: HashMap<&str, i64> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i as i64 + 1))
        .collect();
    synthesize(&dfg, &resources, &inputs)
        .expect("synthesizes")
        .model
}

/// Best-of-3 wall time for one campaign configuration.
fn time_campaign(model: &RtModel, config: &CampaignConfig) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        let report = run_campaign(model, config).expect("campaign runs");
        let ns = t.elapsed().as_nanos() as u64;
        std::hint::black_box(report);
        best = best.min(ns);
    }
    best
}

/// Per-class detected/total for one class, if the campaign had
/// applicable faults of that class.
fn class_row(report: &CampaignReport, class: FaultClass) -> Option<ClassCoverage> {
    report
        .class_coverage()
        .into_iter()
        .find(|c| c.class == class)
}

/// The detection claim of the value-checking layer: for the classes the
/// baseline detectors are blind to, arming the checkers must strictly
/// improve coverage wherever the off-mode run left silent corruption.
fn assert_checkers_close_the_gap(model: &str, off: &CampaignReport, all: &CampaignReport) {
    for class in [FaultClass::Drops, FaultClass::Skews, FaultClass::Inits] {
        let Some(before) = class_row(off, class) else {
            continue;
        };
        let after = class_row(all, class).expect("same fault list either way");
        assert_eq!(
            (before.total, after.total),
            (before.total, before.total),
            "{model} {class}: applicable fault count must not depend on checkers"
        );
        if before.detected < before.total {
            assert!(
                after.detected > before.detected,
                "{model} {class}: checkers did not improve coverage \
                 ({}/{} -> {}/{})",
                before.detected,
                before.total,
                after.detected,
                after.total
            );
        }
    }
    assert!(
        all.coverage() >= off.coverage(),
        "{model}: overall coverage regressed with checkers armed"
    );
}

fn main() {
    let targets: [(&'static str, RtModel); 3] = [
        ("fig1", fig1_model(3, 4)),
        (
            "fir12",
            hls_model(fir(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])),
        ),
        ("dag48", hls_model(random_dag(7, 48, 6))),
    ];

    // Legacy runs at 1/2/4 workers; the batched engine executes the
    // whole lockstep walk on one core, so one row tells the story.
    let configs: [(CampaignEngine, &[usize]); 2] = [
        (CampaignEngine::Legacy, &[1usize, 2, 4]),
        (CampaignEngine::Batched, &[1usize]),
    ];
    let modes = [CheckerMode::Off, CheckerMode::All];

    let mut rows: Vec<Row> = Vec::new();
    for (name, model) in &targets {
        let mut per_mode: Vec<CampaignReport> = Vec::new();
        for checkers in modes {
            let reference = run_campaign(
                model,
                &CampaignConfig {
                    workers: 1,
                    engine: CampaignEngine::Legacy,
                    checkers,
                    ..CampaignConfig::default()
                },
            )
            .expect("campaign runs");
            let reference_json = reference.to_json();
            for (engine, worker_counts) in configs {
                for &workers in worker_counts {
                    let config = CampaignConfig {
                        workers,
                        engine,
                        checkers,
                        ..CampaignConfig::default()
                    };
                    let report = run_campaign(model, &config).expect("campaign runs");
                    let deterministic = report.to_json() == reference_json;
                    assert!(
                        deterministic,
                        "{name} {engine}@{workers} checkers={checkers} diverged from \
                         the legacy 1-worker run"
                    );
                    let wall_ns = time_campaign(model, &config);
                    let faults_per_sec = report.rows.len() as f64 / (wall_ns as f64 / 1e9);
                    eprintln!(
                        "{name:<8} engine={engine:<7} workers={workers} checkers={checkers:<10} \
                         faults={} detected={} wall={:.3} ms ({:.0} faults/s)",
                        report.rows.len(),
                        report.detected(),
                        wall_ns as f64 / 1e6,
                        faults_per_sec
                    );
                    rows.push(Row {
                        model: name,
                        engine,
                        workers,
                        checkers,
                        faults: report.rows.len(),
                        detected: report.detected(),
                        silent: report.silent(),
                        coverage: report.coverage(),
                        coverage_by_class: report.class_coverage(),
                        wall_ns,
                        faults_per_sec,
                        deterministic,
                    });
                }
            }
            per_mode.push(reference);
        }
        let [off, all] = per_mode.as_slice() else {
            unreachable!("one reference per mode");
        };
        assert_checkers_close_the_gap(name, off, all);
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench fault_campaign\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let classes: Vec<String> = r
            .coverage_by_class
            .iter()
            .map(|c| {
                format!(
                    "{{\"class\": \"{}\", \"detected\": {}, \"baseline\": {}, \"total\": {}}}",
                    c.class, c.detected, c.baseline, c.total
                )
            })
            .collect();
        let _ = writeln!(
            out,
            "    {{\"model\": \"{}\", \"engine\": \"{}\", \"workers\": {}, \
             \"checkers\": \"{}\", \"faults\": {}, \
             \"detected\": {}, \"silent\": {}, \"coverage\": {:.4}, \
             \"coverage_by_class\": [{}], \"wall_ns\": {}, \
             \"faults_per_sec\": {:.0}, \"deterministic\": {}}}{}",
            r.model,
            r.engine,
            r.workers,
            r.checkers,
            r.faults,
            r.detected,
            r.silent,
            r.coverage,
            classes.join(", "),
            r.wall_ns,
            r.faults_per_sec,
            r.deterministic,
            comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_faults.json");
    std::fs::write(&path, out).expect("writes BENCH_faults.json");
    eprintln!(
        "fault campaign: {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
