//! The `ExecPlan` cache: load and lower each model once, amortize it
//! across every job the daemon serves.
//!
//! Entries are keyed by a 64-bit **content hash** of the model source
//! text ([`content_hash`], FNV-1a — no external crates) mixed with the
//! requested optimization level ([`cache_key`]), so two clients
//! submitting the same model text at the same level share one parsed
//! [`RtModel`], one lowered [`ExecPlan`] and one compiled [`OptPlan`]
//! regardless of file paths — and a level change can never serve a
//! stream compiled under different pass toggles. Eviction is
//! least-recently-used with a fixed capacity; hit/miss/eviction counters
//! (total and per level) are surfaced through [`PlanCache::stats`] and
//! the daemon's `{"op":"stats"}` job, so `BENCH_serve.json` and
//! operators read the same numbers.
//!
//! Build failures are **not** cached: a malformed model answers with an
//! error and leaves the cache untouched, so a typo cannot evict a warm
//! plan.

use std::sync::Arc;

use clockless_core::plan::ExecPlan;
use clockless_core::{ExecOptions, ExecOutcome, OptLevel, OptPlan, RtModel};
use clockless_kernel::KernelError;

/// One cached model: the parsed [`RtModel`], its lowered [`ExecPlan`]
/// and (above `-O0`) the compiled micro-op stream, shared between jobs
/// via [`Arc`].
#[derive(Debug)]
pub struct CachedPlan {
    /// The parsed, validated model.
    pub model: RtModel,
    /// The model lowered to the compiled phase-schedule IR.
    pub plan: ExecPlan,
    /// The level the entry was compiled at (part of the cache key).
    pub opt: OptLevel,
    /// The optimized stream; `None` at [`OptLevel::O0`], where the warm
    /// path walks the lowered plan directly.
    pub optimized: Option<OptPlan>,
}

impl CachedPlan {
    /// Executes the cached artifact: the optimized stream when one was
    /// compiled, the raw plan walk at `-O0`. Observables are
    /// byte-identical either way.
    ///
    /// # Errors
    ///
    /// Exactly [`ExecPlan::execute`]'s.
    pub fn execute(&self, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        match &self.optimized {
            Some(opt) => opt.execute(options),
            None => self.plan.execute(options),
        }
    }
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to parse + lower.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
    /// Per-level `(hits, misses)`, indexed like [`OptLevel::ALL`] —
    /// the totals above are their sums.
    pub by_level: [(u64, u64); 3],
}

struct Entry {
    key: u64,
    /// Monotonic last-use stamp; the smallest stamp is evicted first.
    stamp: u64,
    plan: Arc<CachedPlan>,
}

/// A capacity-bounded, least-recently-used cache of lowered execution
/// plans.
///
/// # Examples
///
/// ```
/// use clockless_core::text::parse_model;
/// use clockless_core::OptLevel;
/// use clockless_serve::cache::{cache_key, PlanCache};
///
/// let text = "model tiny steps 1\nregister R init 3\n";
/// let mut cache = PlanCache::new(8);
/// let key = cache_key(text.as_bytes(), false, OptLevel::O2);
/// let first = cache.get_or_insert(key, OptLevel::O2, || {
///     parse_model(text).map_err(|e| e.to_string())
/// })?;
/// let second =
///     cache.get_or_insert(key, OptLevel::O2, || unreachable!("warm key never rebuilds"))?;
/// assert_eq!(first.model.name(), second.model.name());
/// assert!(second.optimized.is_some());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().by_level[2], (1, 1));
/// # Ok::<(), String>(())
/// ```
pub struct PlanCache {
    entries: Vec<Entry>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Per-level `(hits, misses)`, indexed like [`OptLevel::ALL`].
    by_level: [(u64, u64); 3],
}

/// FNV-1a content hash of model source text.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full cache key: content hash mixed with the source flavor (VHDL
/// sources parse differently from the same bytes) and the optimization
/// level (each level caches its own compiled artifact).
pub fn cache_key(bytes: &[u8], vhdl: bool, opt: OptLevel) -> u64 {
    // Golden-ratio multiples keep the three level keys far apart.
    content_hash(bytes) ^ u64::from(vhdl) ^ (opt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (clamped to at
    /// least one — a cache that can hold nothing would make every lookup
    /// a miss *and* an eviction).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Vec::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            by_level: [(0, 0); 3],
        }
    }

    /// Looks up `key`, building (parse via `build`, lower, then compile
    /// the optimized stream for `opt` above `-O0`) and inserting on a
    /// miss. The LRU entry is evicted when the cache is full. `opt` must
    /// be the level `key` was derived with ([`cache_key`]) — it selects
    /// the compiled artifact and attributes the per-level counters.
    ///
    /// # Errors
    ///
    /// The `build` error, verbatim. Failures are not cached.
    pub fn get_or_insert(
        &mut self,
        key: u64,
        opt: OptLevel,
        build: impl FnOnce() -> Result<RtModel, String>,
    ) -> Result<Arc<CachedPlan>, String> {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            e.stamp = self.tick;
            self.hits += 1;
            self.by_level[opt as usize].0 += 1;
            return Ok(Arc::clone(&e.plan));
        }
        self.misses += 1;
        self.by_level[opt as usize].1 += 1;
        let model = build()?;
        let plan = ExecPlan::lower(&model);
        let optimized = match opt {
            OptLevel::O0 => None,
            level => Some(OptPlan::compile(&plan, level.config())),
        };
        let cached = Arc::new(CachedPlan {
            model,
            plan,
            opt,
            optimized,
        });
        if self.entries.len() >= self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("full cache has entries");
            self.entries.swap_remove(lru);
            self.evictions += 1;
        }
        self.entries.push(Entry {
            key,
            stamp: self.tick,
            plan: Arc::clone(&cached),
        });
        Ok(cached)
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            capacity: self.capacity,
            by_level: self.by_level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::text::parse_model;

    fn model_text(i: usize) -> String {
        format!("model m{i} steps 1\nregister R init {i}\n")
    }

    fn insert(cache: &mut PlanCache, i: usize) -> Arc<CachedPlan> {
        insert_at(cache, i, OptLevel::O2)
    }

    fn insert_at(cache: &mut PlanCache, i: usize, opt: OptLevel) -> Arc<CachedPlan> {
        let text = model_text(i);
        cache
            .get_or_insert(cache_key(text.as_bytes(), false, opt), opt, || {
                parse_model(&text).map_err(|e| e.to_string())
            })
            .expect("builds")
    }

    #[test]
    fn content_hash_distinguishes_texts() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), content_hash(b"\0"));
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = PlanCache::new(4);
        insert(&mut cache, 0);
        insert(&mut cache, 0);
        insert(&mut cache, 1);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 2, 0, 2));
    }

    #[test]
    fn eviction_removes_the_least_recently_used_entry() {
        let mut cache = PlanCache::new(2);
        insert(&mut cache, 0);
        insert(&mut cache, 1);
        insert(&mut cache, 0); // touch 0 so 1 is now LRU
        insert(&mut cache, 2); // evicts 1
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
        // 0 and 2 are warm (hits), 1 was evicted (miss).
        let before = cache.stats().hits;
        insert(&mut cache, 0);
        insert(&mut cache, 2);
        assert_eq!(cache.stats().hits, before + 2);
        let misses_before = cache.stats().misses;
        insert(&mut cache, 1);
        assert_eq!(cache.stats().misses, misses_before + 1);
    }

    #[test]
    fn build_failures_are_not_cached() {
        let mut cache = PlanCache::new(2);
        let err = cache
            .get_or_insert(content_hash(b"not a model"), OptLevel::O2, || {
                Err("nope".to_string())
            })
            .expect_err("fails");
        assert_eq!(err, "nope");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
        // The same key rebuilds — and can succeed this time.
        let text = model_text(9);
        cache
            .get_or_insert(content_hash(b"not a model"), OptLevel::O2, || {
                parse_model(&text).map_err(|e| e.to_string())
            })
            .expect("second build succeeds");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn levels_key_and_count_separately() {
        let mut cache = PlanCache::new(8);
        let o0 = insert_at(&mut cache, 0, OptLevel::O0);
        let o2 = insert_at(&mut cache, 0, OptLevel::O2);
        // Same text, different level: distinct entries and artifacts.
        assert_eq!(cache.stats().entries, 2);
        assert!(o0.optimized.is_none());
        assert!(o2.optimized.is_some());
        insert_at(&mut cache, 0, OptLevel::O2); // warm at O2 only
        let s = cache.stats();
        assert_eq!(s.by_level[0], (0, 1));
        assert_eq!(s.by_level[1], (0, 0));
        assert_eq!(s.by_level[2], (1, 1));
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn cached_artifacts_execute_byte_identically_across_levels() {
        use clockless_core::ExecOptions;
        let mut cache = PlanCache::new(8);
        let o0 = insert_at(&mut cache, 3, OptLevel::O0);
        let base = o0.execute(&ExecOptions::traced()).expect("runs");
        for level in [OptLevel::O1, OptLevel::O2] {
            let c = insert_at(&mut cache, 3, level);
            let out = c.execute(&ExecOptions::traced()).expect("runs");
            assert_eq!(base.summary.registers, out.summary.registers);
            assert_eq!(base.summary.stats, out.summary.stats);
            assert_eq!(base.vcd, out.vcd);
        }
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut cache = PlanCache::new(0);
        insert(&mut cache, 0);
        assert_eq!(cache.stats().capacity, 1);
        assert_eq!(cache.stats().entries, 1);
        insert(&mut cache, 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cached_plan_executes_like_a_fresh_lowering() {
        use clockless_core::{Backend, ExecOptions};
        let mut cache = PlanCache::new(2);
        let cached = insert(&mut cache, 5);
        let from_cache = cached.execute(&ExecOptions::traced()).expect("runs");
        let fresh = Backend::Compiled
            .execute(&cached.model, &ExecOptions::traced())
            .expect("runs");
        assert_eq!(from_cache.summary.registers, fresh.summary.registers);
        assert_eq!(from_cache.summary.stats, fresh.summary.stats);
    }
}
