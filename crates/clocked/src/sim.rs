//! Clocked simulation of translated designs.
//!
//! The clocked architecture is a conventional synthesizable RTL structure:
//! a clock generator (physical time!), a step counter FSM, combinational
//! bus/operand multiplexers and module datapaths driven by the routing
//! tables, and edge-triggered registers and pipeline stages. It is the
//! "usual RT model" the paper contrasts with: same function, but timing
//! expressed in clock cycles and nanoseconds instead of control steps and
//! delta cycles.

use clockless_core::{Guard, Op, RtModel, Step, Value};
use clockless_kernel::{Femtos, KernelError, ProcessCtx, SignalId, SimStats, Simulator, Wait};

use crate::translate::ClockedDesign;

/// A guard bound to the `_q` nets of the registers it reads, ready to be
/// evaluated inside a process against live simulation values.
type ResolvedGuard = (Guard, Vec<(String, SignalId)>);

fn resolve_guard(model: &RtModel, reg_out: &[SignalId], g: &Guard) -> ResolvedGuard {
    let mut regs: Vec<(String, SignalId)> = Vec::new();
    for r in g.registers() {
        if !regs.iter().any(|(n, _)| n == r) {
            let rid = model
                .register_by_name(r)
                .expect("guard reads known register");
            regs.push((r.to_string(), reg_out[rid.0 as usize]));
        }
    }
    (g.clone(), regs)
}

fn guard_passes(ctx: &ProcessCtx<'_, Value>, rg: &ResolvedGuard) -> bool {
    rg.0.eval(|name| {
        rg.1.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, s)| ctx.value(*s).num())
    })
}

/// A value latched into a clocked register, attributed to the control
/// step it implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockedCommit {
    /// The register's name.
    pub register: String,
    /// The control step whose end-of-step edge latched the value.
    pub step: Step,
    /// The latched value.
    pub value: Value,
}

/// An elaborated, initialized clocked simulation.
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_clocked::{ClockedDesign, ClockScheme, ClockedSimulation};
/// use clockless_core::Value;
///
/// let model = fig1_model(3, 4);
/// let design = ClockedDesign::translate(&model, ClockScheme::default())?;
/// let mut sim = ClockedSimulation::new(&design, true)?;
/// sim.run_to_completion()?;
/// assert_eq!(sim.register_value("R1"), Some(Value::Num(7)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ClockedSimulation {
    design: ClockedDesign,
    sim: Simulator<Value>,
    reg_out: Vec<SignalId>,
}

impl ClockedSimulation {
    /// Elaborates and initializes the clocked design. Pass `trace = true`
    /// to enable [`register_commits`](Self::register_commits).
    ///
    /// # Errors
    ///
    /// Propagates kernel elaboration errors.
    pub fn new(design: &ClockedDesign, trace: bool) -> Result<ClockedSimulation, KernelError> {
        let model = design.model().clone();
        let scheme = design.scheme();
        let period = scheme.period_fs();
        let half = period / 2;
        let cps = scheme.cycles_per_step();
        let cs_max = model.cs_max() as u64;
        let total_edges = cs_max * cps + 1;

        let mut sim: Simulator<Value> = Simulator::new();
        if trace {
            sim.enable_trace();
        }

        let clk = sim.signal("clk", Value::Num(0));
        let step_sig = sim.signal("step", Value::Num(0));

        let reg_out: Vec<SignalId> = model
            .registers()
            .iter()
            .map(|r| sim.signal(format!("{}_q", r.name), r.init))
            .collect();
        // One mux net per bus *side*: the abstract model time-multiplexes
        // a bus between its read phases (register sources) and write
        // phases (module sources) within a step; the one-cycle clocked
        // architecture realizes that as two separate mux nets.
        let bus_rmux: Vec<SignalId> = model
            .buses()
            .iter()
            .map(|b| sim.signal(format!("{}_rmux", b.name), Value::Disc))
            .collect();
        let bus_wmux: Vec<SignalId> = model
            .buses()
            .iter()
            .map(|b| sim.signal(format!("{}_wmux", b.name), Value::Disc))
            .collect();
        let mod_out: Vec<SignalId> = model
            .modules()
            .iter()
            .map(|m| sim.signal(format!("{}_out", m.name), Value::Disc))
            .collect();
        // For pipelined/sequential modules an extra comb node feeds the
        // pipeline; combinational modules drive `out` directly.
        let mod_comb: Vec<Option<SignalId>> = model
            .modules()
            .iter()
            .map(|m| {
                if m.timing.latency() > 0 {
                    Some(sim.signal(format!("{}_comb", m.name), Value::Disc))
                } else {
                    None
                }
            })
            .collect();

        // --- Clock generator -------------------------------------------
        {
            let mut edges_done: u64 = 0;
            let mut level = 0i64;
            sim.process("CLKGEN", &[clk], move |ctx: &mut ProcessCtx<'_, Value>| {
                if ctx.now().fs == 0 && level == 0 && edges_done == 0 && ctx.now().delta == 0 {
                    // Initial execution: schedule the first rising edge.
                    return Wait::For(half);
                }
                if level == 0 {
                    level = 1;
                    edges_done += 1;
                    ctx.assign(clk, Value::Num(1));
                    Wait::For(half)
                } else {
                    level = 0;
                    ctx.assign(clk, Value::Num(0));
                    if edges_done >= total_edges {
                        Wait::Done
                    } else {
                        Wait::For(half)
                    }
                }
            });
        }

        // --- Step counter ----------------------------------------------
        {
            let mut cycles: u64 = 0;
            sim.process(
                "STEP_FSM",
                &[step_sig],
                move |ctx: &mut ProcessCtx<'_, Value>| {
                    if *ctx.value(clk) == Value::Num(1) {
                        cycles += 1;
                        let step = (cycles - 1) / cps + 1;
                        ctx.assign(step_sig, Value::Num(step as i64));
                    }
                    Wait::Event(vec![clk])
                },
            );
        }

        // --- Registers: latch at end-of-step edges ----------------------
        for (ridx, rdecl) in model.registers().iter().enumerate() {
            // Per-step load source (bus signal), step 1 at index 0.
            let rid = model.register_by_name(&rdecl.name).expect("own register");
            // Each load carries the owning tuple's guard (if any): a false
            // guard at the latch edge disables the load, mirroring the
            // write-side transfer process driving DISC.
            let loads: Vec<Option<(SignalId, Option<ResolvedGuard>)>> = (0..cs_max as usize)
                .map(|si| {
                    design.tables().reg_load[si].get(&rid).map(|b| {
                        let g = design.tables().reg_load_guard[si]
                            .get(&rid)
                            .map(|g| resolve_guard(&model, &reg_out, g));
                        (bus_wmux[b.0 as usize], g)
                    })
                })
                .collect();
            let q = reg_out[ridx];
            let mut edge: u64 = 0;
            sim.process(
                format!("{}_ff", rdecl.name),
                &[q],
                move |ctx: &mut ProcessCtx<'_, Value>| {
                    if *ctx.value(clk) == Value::Num(1) {
                        edge += 1;
                        // Edge `edge` ends cycle `edge - 1`; a step ends
                        // here when that cycle count is a multiple of cps.
                        if edge > 1 && (edge - 1).is_multiple_of(cps) {
                            let s = (edge - 1) / cps; // the completed step
                            if s >= 1 && s <= cs_max {
                                if let Some(Some((src, g))) = loads.get(s as usize - 1) {
                                    if g.as_ref().is_none_or(|g| guard_passes(ctx, g)) {
                                        let v = *ctx.value(*src);
                                        if v != Value::Disc {
                                            ctx.assign(q, v);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    Wait::Event(vec![clk])
                },
            );
        }

        // --- Module pipelines: shift at end-of-step edges ----------------
        for (midx, mdecl) in model.modules().iter().enumerate() {
            let latency = mdecl.timing.latency();
            if latency == 0 {
                continue;
            }
            let comb = mod_comb[midx].expect("latency > 0 has comb node");
            let out = mod_out[midx];
            // The latch edge itself provides one stage of delay, so a
            // latency-L module needs L-1 further FIFO stages: operands of
            // step s settle `comb` during s, the end-of-step edge pushes
            // it, and it surfaces on `out` during step s+L.
            let mut pipe: std::collections::VecDeque<Value> =
                std::iter::repeat_n(Value::Disc, latency as usize - 1).collect();
            let mut edge: u64 = 0;
            sim.process(
                format!("{}_pipe", mdecl.name),
                &[out],
                move |ctx: &mut ProcessCtx<'_, Value>| {
                    if *ctx.value(clk) == Value::Num(1) {
                        edge += 1;
                        if edge > 1 && (edge - 1).is_multiple_of(cps) {
                            pipe.push_back(*ctx.value(comb));
                            let due = pipe.pop_front().expect("nonempty after push");
                            ctx.assign(out, due);
                        }
                    }
                    Wait::Event(vec![clk])
                },
            );
        }

        // --- Bus multiplexers (combinational, one per side) --------------
        for (bidx, bdecl) in model.buses().iter().enumerate() {
            let bid = model.bus_by_name(&bdecl.name).expect("own bus");
            // Read-side drives carry the owning tuple's guard: a false
            // guard puts DISC on the bus in place of the register value,
            // just as TRANSG does in the clock-free model. Write-side
            // drives are never guarded here — a false guard already
            // surfaces as DISC operands and a disabled load.
            type Drive = Vec<Option<(SignalId, Option<ResolvedGuard>)>>;
            let sides: [(&str, Drive, SignalId); 2] = [
                (
                    "r",
                    (0..cs_max as usize)
                        .map(|si| {
                            design.tables().bus_read[si].get(&bid).map(|r| {
                                let g = design.tables().bus_read_guard[si]
                                    .get(&bid)
                                    .map(|g| resolve_guard(&model, &reg_out, g));
                                (reg_out[r.0 as usize], g)
                            })
                        })
                        .collect(),
                    bus_rmux[bidx],
                ),
                (
                    "w",
                    (0..cs_max as usize)
                        .map(|si| {
                            design.tables().bus_write[si]
                                .get(&bid)
                                .map(|m| (mod_out[m.0 as usize], None))
                        })
                        .collect(),
                    bus_wmux[bidx],
                ),
            ];
            for (tag, drive, sig) in sides {
                if drive.iter().all(Option::is_none) {
                    continue; // unused side: stays DISC, no process needed
                }
                let mut sens: Vec<SignalId> = vec![step_sig];
                for (s, g) in drive.iter().flatten() {
                    if !sens.contains(s) {
                        sens.push(*s);
                    }
                    for (_, gs) in g.iter().flat_map(|rg| rg.1.iter()) {
                        if !sens.contains(gs) {
                            sens.push(*gs);
                        }
                    }
                }
                sim.process(
                    format!("{}_{tag}muxp", bdecl.name),
                    &[sig],
                    move |ctx: &mut ProcessCtx<'_, Value>| {
                        let step = ctx.value(step_sig).num().unwrap_or(0);
                        let v = if step >= 1 && (step as usize) <= drive.len() {
                            match &drive[step as usize - 1] {
                                Some((src, g)) => {
                                    if g.as_ref().is_none_or(|g| guard_passes(ctx, g)) {
                                        *ctx.value(*src)
                                    } else {
                                        Value::Disc
                                    }
                                }
                                None => Value::Disc,
                            }
                        } else {
                            Value::Disc
                        };
                        ctx.assign(sig, v);
                        Wait::Event(sens.clone())
                    },
                );
            }
        }

        // --- Module datapaths (combinational) -----------------------------
        for (midx, mdecl) in model.modules().iter().enumerate() {
            let mid = model.module_by_name(&mdecl.name).expect("own module");
            let plan: Vec<(Option<SignalId>, Option<SignalId>, Option<Op>)> = (0..cs_max as usize)
                .map(|si| {
                    let t = design.tables();
                    (
                        t.mod_in1[si].get(&mid).map(|b| bus_rmux[b.0 as usize]),
                        t.mod_in2[si].get(&mid).map(|b| bus_rmux[b.0 as usize]),
                        t.mod_op[si].get(&mid).copied(),
                    )
                })
                .collect();
            let target = match mod_comb[midx] {
                Some(comb) => comb,
                None => mod_out[midx],
            };
            let mut sens: Vec<SignalId> = vec![step_sig];
            for (a, b, _) in &plan {
                for s in [a, b].into_iter().flatten() {
                    if !sens.contains(s) {
                        sens.push(*s);
                    }
                }
            }
            sim.process(
                format!("{}_dp", mdecl.name),
                &[target],
                move |ctx: &mut ProcessCtx<'_, Value>| {
                    let step = ctx.value(step_sig).num().unwrap_or(0);
                    let v = if step >= 1 && (step as usize) <= plan.len() {
                        let (a, b, op) = &plan[step as usize - 1];
                        match op {
                            Some(op) => {
                                let av = a.map(|s| *ctx.value(s)).unwrap_or(Value::Disc);
                                let bv = b.map(|s| *ctx.value(s)).unwrap_or(Value::Disc);
                                op.apply(av, bv)
                            }
                            None => Value::Disc,
                        }
                    } else {
                        Value::Disc
                    };
                    ctx.assign(target, v);
                    Wait::Event(sens.clone())
                },
            );
        }

        sim.initialize()?;
        Ok(ClockedSimulation {
            design: design.clone(),
            sim,
            reg_out,
        })
    }

    /// Runs until quiescence (the clock generator stops after the final
    /// latch edge).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn run_to_completion(&mut self) -> Result<SimStats, KernelError> {
        self.sim.run()
    }

    /// Final (or current) value of a register.
    pub fn register_value(&self, name: &str) -> Option<Value> {
        let rid = self.design.model().register_by_name(name)?;
        Some(*self.sim.value(self.reg_out[rid.0 as usize]))
    }

    /// All register values, in declaration order.
    pub fn registers(&self) -> Vec<(String, Value)> {
        self.design
            .model()
            .registers()
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), *self.sim.value(self.reg_out[i])))
            .collect()
    }

    /// Kernel statistics.
    pub fn stats(&self) -> SimStats {
        self.sim.stats()
    }

    /// Physical time reached, in femtoseconds.
    pub fn elapsed_fs(&self) -> Femtos {
        self.sim.now().fs
    }

    /// The underlying model.
    pub fn model(&self) -> &RtModel {
        self.design.model()
    }

    /// Register commits attributed to control steps, for equivalence
    /// checking against the clock-free model. `None` unless constructed
    /// with `trace = true`.
    pub fn register_commits(&self) -> Option<Vec<ClockedCommit>> {
        let trace = self.sim.trace()?;
        let scheme = self.design.scheme();
        let half = scheme.period_fs() / 2;
        let period = scheme.period_fs();
        let cps = scheme.cycles_per_step();
        let mut commits = Vec::new();
        for e in trace.events() {
            let Some(ridx) = self.reg_out.iter().position(|&s| s == e.signal) else {
                continue;
            };
            if e.at.fs == 0 {
                continue; // initial value
            }
            // Rising edge k happens at fs = (k-1)*period + half.
            let k = (e.at.fs - half) / period + 1;
            let step = ((k - 1) / cps) as Step;
            commits.push(ClockedCommit {
                register: self.design.model().registers()[ridx].name.clone(),
                step,
                value: e.value,
            });
        }
        Some(commits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::ClockScheme;
    use clockless_core::model::fig1_model;
    use clockless_kernel::NS;

    #[test]
    fn fig1_clocked_matches_abstract_result() {
        let model = fig1_model(3, 4);
        let design = ClockedDesign::translate(&model, ClockScheme::default()).unwrap();
        let mut sim = ClockedSimulation::new(&design, false).unwrap();
        sim.run_to_completion().unwrap();
        assert_eq!(sim.register_value("R1"), Some(Value::Num(7)));
        assert_eq!(sim.register_value("R2"), Some(Value::Num(4)));
    }

    #[test]
    fn physical_time_advances_with_the_clock() {
        let model = fig1_model(1, 1);
        let period = 10 * NS;
        let design =
            ClockedDesign::translate(&model, ClockScheme::OneCyclePerStep { period_fs: period })
                .unwrap();
        let mut sim = ClockedSimulation::new(&design, false).unwrap();
        sim.run_to_completion().unwrap();
        // 7 steps -> 8 rising edges; clock runs 8 cycles.
        assert!(sim.elapsed_fs() >= 7 * period);
    }

    #[test]
    fn commits_attributed_to_steps() {
        let model = fig1_model(10, 20);
        let design = ClockedDesign::translate(&model, ClockScheme::default()).unwrap();
        let mut sim = ClockedSimulation::new(&design, true).unwrap();
        sim.run_to_completion().unwrap();
        let commits = sim.register_commits().unwrap();
        assert_eq!(
            commits,
            vec![ClockedCommit {
                register: "R1".into(),
                step: 6,
                value: Value::Num(30)
            }]
        );
    }

    #[test]
    fn two_cycle_scheme_same_function_twice_the_time() {
        let model = fig1_model(5, 6);
        let p = 10 * NS;
        let one = ClockedDesign::translate(&model, ClockScheme::OneCyclePerStep { period_fs: p })
            .unwrap();
        let two = ClockedDesign::translate(&model, ClockScheme::TwoCyclesPerStep { period_fs: p })
            .unwrap();
        let mut s1 = ClockedSimulation::new(&one, false).unwrap();
        let mut s2 = ClockedSimulation::new(&two, false).unwrap();
        s1.run_to_completion().unwrap();
        s2.run_to_completion().unwrap();
        assert_eq!(s1.register_value("R1"), Some(Value::Num(11)));
        assert_eq!(s2.register_value("R1"), Some(Value::Num(11)));
        assert!(s2.elapsed_fs() > s1.elapsed_fs() * 3 / 2);
    }
}
