//! The daemon: connection handling over the shared job-queue executor.
//!
//! A [`Daemon`] owns the long-lived state — the plan cache and the
//! counter block — and serves any number of connections against it. Each
//! connection gets its own [`ThreadPool`] (the same executor the fleet
//! batch engine runs on), a reader loop that parses NDJSON request
//! lines and submits one unit of work per job, and a writer thread that
//! streams each response line the moment its job completes. Jobs are
//! panic-fenced at the executor's worker fence: a hostile job becomes an
//! error envelope for its `id`, never a dead daemon.
//!
//! Transports are just `BufRead`/`Write` pairs: [`Daemon::serve_stdio`]
//! wires up the process pipes, [`Daemon::serve_unix`] accepts Unix
//! socket connections (iteratively — one client at a time keeps the
//! daemon dependency-free; the executor parallelism is *inside* a
//! connection), and tests drive [`Daemon::serve_connection`] with
//! in-memory buffers.
//!
//! # Examples
//!
//! ```
//! use clockless_serve::{ConnectionOutcome, Daemon, ServeConfig};
//!
//! let daemon = Daemon::new(ServeConfig::default());
//! let requests = "{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"shutdown\"}\n";
//! let mut replies = Vec::new();
//! let outcome = daemon.serve_connection(requests.as_bytes(), &mut replies);
//! assert_eq!(outcome, ConnectionOutcome::Shutdown);
//! let text = String::from_utf8(replies).unwrap();
//! assert!(text.lines().any(|l| l.contains("\"payload\":\"pong\\n\"")));
//! ```

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use clockless_fleet::{Emission, JobExecutor as _, ThreadPool};

use crate::cache::{CacheStats, PlanCache};
use crate::jobs::{dispatch, JobCtx};
use crate::protocol::{render_error, render_ok, ErrorCode, Request, PROTOCOL_VERSION};

/// Daemon tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Worker threads per connection. The default of 1 keeps response
    /// lines in request order (FIFO); more workers stream responses in
    /// completion order.
    pub workers: usize,
    /// Plans resident in the cache before LRU eviction.
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            cache_capacity: 64,
        }
    }
}

/// Monotonic daemon counters, shared across connections.
///
/// `submitted` counts accepted requests (including control ops);
/// `completed` counts jobs answered with a success envelope; `errors`
/// counts error envelopes (parse rejections, job failures, fenced
/// panics). Per-op tallies count accepted requests by kind.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests accepted (parsed far enough to have an `op`).
    pub submitted: AtomicU64,
    /// Jobs answered `ok:true`.
    pub completed: AtomicU64,
    /// Error envelopes emitted.
    pub errors: AtomicU64,
    op_run: AtomicU64,
    op_faults: AtomicU64,
    op_fleet: AtomicU64,
    op_sweep: AtomicU64,
    op_stats: AtomicU64,
    op_ping: AtomicU64,
    op_shutdown: AtomicU64,
}

impl ServeStats {
    fn count_op(&self, op: &str) {
        let counter = match op {
            "run" => &self.op_run,
            "faults" => &self.op_faults,
            "fleet" => &self.op_fleet,
            "sweep" => &self.op_sweep,
            "stats" => &self.op_stats,
            "ping" => &self.op_ping,
            "shutdown" => &self.op_shutdown,
            _ => return, // unknown ops are counted only in `errors`
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Renders the `stats` job payload: a deterministic multi-line JSON
    /// document (deterministic given the counter values — there are no
    /// wall-clock fields).
    pub fn document(&self, cache: CacheStats, queue_depth: usize, workers: usize) -> String {
        let by_level: Vec<String> = cache
            .by_level
            .iter()
            .enumerate()
            .map(|(level, (hits, misses))| {
                format!("\"{level}\": {{\"hits\": {hits}, \"misses\": {misses}}}")
            })
            .collect();
        format!(
            "{{\n  \"serve\": {{\"protocol\": {PROTOCOL_VERSION}, \"workers\": {workers}, \
             \"opt\": {}}},\n  \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \
             \"capacity\": {}, \"by_level\": {{{}}}}},\n  \
             \"jobs\": {{\"submitted\": {}, \"completed\": {}, \"errors\": {}, \
             \"queue_depth\": {queue_depth}}},\n  \
             \"ops\": {{\"run\": {}, \"faults\": {}, \"fleet\": {}, \"sweep\": {}, \
             \"stats\": {}, \"ping\": {}, \"shutdown\": {}}}\n}}\n",
            clockless_core::OptLevel::default(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.entries,
            cache.capacity,
            by_level.join(", "),
            self.submitted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.op_run.load(Ordering::Relaxed),
            self.op_faults.load(Ordering::Relaxed),
            self.op_fleet.load(Ordering::Relaxed),
            self.op_sweep.load(Ordering::Relaxed),
            self.op_stats.load(Ordering::Relaxed),
            self.op_ping.load(Ordering::Relaxed),
            self.op_shutdown.load(Ordering::Relaxed),
        )
    }
}

/// Why a connection ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionOutcome {
    /// The client closed its input; all submitted jobs were answered.
    Eof,
    /// The client sent `{"op":"shutdown"}`; the daemon should stop
    /// accepting connections.
    Shutdown,
    /// The client disconnected while responses were pending; the
    /// remaining lines were dropped, the daemon is unharmed.
    ClientLost,
}

/// The long-lived simulation server.
pub struct Daemon {
    config: ServeConfig,
    cache: Arc<Mutex<PlanCache>>,
    stats: Arc<ServeStats>,
}

impl Daemon {
    /// Creates a daemon with an empty plan cache and zeroed counters.
    pub fn new(config: ServeConfig) -> Daemon {
        Daemon {
            config,
            cache: Arc::new(Mutex::new(PlanCache::new(config.cache_capacity))),
            stats: Arc::new(ServeStats::default()),
        }
    }

    /// The daemon's counter block (shared across connections).
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Current plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().unwrap_or_else(|e| e.into_inner()).stats()
    }

    /// Serves one NDJSON session: reads request lines from `reader`,
    /// streams response lines to `writer` as jobs complete. Returns when
    /// the input ends or a `shutdown` request arrives; every job
    /// submitted before that point is answered (or dropped cleanly if
    /// the writer fails mid-session — see
    /// [`ConnectionOutcome::ClientLost`]).
    pub fn serve_connection(
        &self,
        reader: impl BufRead,
        mut writer: impl Write + Send,
    ) -> ConnectionOutcome {
        let (sink, emissions) = mpsc::channel::<Emission<String>>();
        let panic_stats = Arc::clone(&self.stats);
        let pool: ThreadPool<String> =
            ThreadPool::new(self.config.workers, sink, move |id, msg| {
                panic_stats.errors.fetch_add(1, Ordering::Relaxed);
                render_error(
                    Some(id),
                    None,
                    ErrorCode::RunFailed,
                    &format!("job panicked: {msg}"),
                )
            });

        let (shutdown, lost) = std::thread::scope(|s| {
            let writer_thread = s.spawn(move || {
                let mut lost = false;
                for e in emissions.iter() {
                    if !lost
                        && (writer.write_all(e.payload.as_bytes()).is_err()
                            || writer.flush().is_err())
                    {
                        // Mid-job disconnect: keep draining so the pool
                        // never blocks, but stop writing.
                        lost = true;
                    }
                }
                lost
            });

            let mut shutdown = false;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let req = match Request::parse(&line) {
                    Ok(req) => req,
                    Err((id, err)) => {
                        // Rejections flow through the pool like any job,
                        // so response order stays FIFO at one worker.
                        self.stats.errors.fetch_add(1, Ordering::Relaxed);
                        let payload = render_error(id, None, err.code, &err.message);
                        pool.submit(id.unwrap_or(0), Box::new(move || payload));
                        continue;
                    }
                };
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                self.stats.count_op(&req.op);
                if req.op == "shutdown" {
                    self.stats.completed.fetch_add(1, Ordering::Relaxed);
                    let id = req.id;
                    pool.submit(id, Box::new(move || render_ok(id, "shutdown", "bye\n")));
                    shutdown = true;
                    break;
                }
                let ctx = JobCtx {
                    cache: Arc::clone(&self.cache),
                    stats: Arc::clone(&self.stats),
                    queue_depth: pool.queue_depth(),
                    workers: self.config.workers,
                };
                let ticket = req.id;
                pool.submit(ticket, Box::new(move || dispatch(&req, &ctx)));
            }
            pool.shutdown(); // drain: every submitted job emits
            let lost = writer_thread.join().unwrap_or(true);
            (shutdown, lost)
        });

        if shutdown {
            ConnectionOutcome::Shutdown
        } else if lost {
            ConnectionOutcome::ClientLost
        } else {
            ConnectionOutcome::Eof
        }
    }

    /// Serves one session over the process's stdin/stdout.
    pub fn serve_stdio(&self) -> ConnectionOutcome {
        let stdin = std::io::stdin();
        self.serve_connection(stdin.lock(), std::io::stdout())
    }

    /// Binds `path` (replacing any stale socket file) and serves
    /// connections one at a time until a client requests `shutdown`.
    /// A client that disconnects mid-session does not stop the daemon.
    ///
    /// # Errors
    ///
    /// Socket bind/accept errors; per-connection I/O trouble is handled
    /// by the session loop instead of being returned.
    pub fn serve_unix(&self, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        for stream in listener.incoming() {
            let stream = stream?;
            let outcome = self.serve_connection(BufReader::new(&stream), &stream);
            if outcome == ConnectionOutcome::Shutdown {
                break;
            }
        }
        let _ = std::fs::remove_file(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{decode_payload, Json};

    fn serve(daemon: &Daemon, input: &str) -> (Vec<String>, ConnectionOutcome) {
        let mut out = Vec::new();
        let outcome = daemon.serve_connection(input.as_bytes(), &mut out);
        let text = String::from_utf8(out).expect("utf-8 responses");
        (text.lines().map(str::to_string).collect(), outcome)
    }

    #[test]
    fn ping_round_trip() {
        let daemon = Daemon::new(ServeConfig::default());
        let (lines, outcome) = serve(&daemon, "{\"id\":1,\"op\":\"ping\"}\n");
        assert_eq!(outcome, ConnectionOutcome::Eof);
        assert_eq!(lines.len(), 1);
        assert_eq!(decode_payload(&lines[0]).as_deref(), Some("pong\n"));
    }

    #[test]
    fn malformed_lines_get_error_envelopes_and_do_not_wedge() {
        let daemon = Daemon::new(ServeConfig::default());
        let input =
            "this is not json\n{\"id\":2,\"op\":\"nonsense\"}\n{\"id\":3,\"op\":\"ping\"}\n";
        let (lines, outcome) = serve(&daemon, input);
        assert_eq!(outcome, ConnectionOutcome::Eof);
        assert_eq!(lines.len(), 3, "{lines:?}");
        let first = Json::parse(&lines[0]).expect("valid envelope");
        assert_eq!(
            first
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad-json")
        );
        let second = Json::parse(&lines[1]).expect("valid envelope");
        assert_eq!(second.get("id").and_then(Json::as_u64), Some(2));
        assert_eq!(
            second
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("unknown-op")
        );
        assert_eq!(decode_payload(&lines[2]).as_deref(), Some("pong\n"));
    }

    #[test]
    fn shutdown_is_acknowledged_and_stops_the_session() {
        let daemon = Daemon::new(ServeConfig::default());
        let input = "{\"id\":1,\"op\":\"shutdown\"}\n{\"id\":2,\"op\":\"ping\"}\n";
        let (lines, outcome) = serve(&daemon, input);
        assert_eq!(outcome, ConnectionOutcome::Shutdown);
        // The ping after shutdown is never read.
        assert_eq!(lines.len(), 1);
        assert_eq!(decode_payload(&lines[0]).as_deref(), Some("bye\n"));
    }

    /// A writer that fails after `good` writes — a client that went away
    /// mid-session.
    struct Flaky {
        good: usize,
    }
    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.good == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client gone",
                ));
            }
            self.good -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn mid_session_disconnect_is_survived() {
        let daemon = Daemon::new(ServeConfig::default());
        let input =
            "{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"ping\"}\n{\"id\":3,\"op\":\"ping\"}\n";
        let outcome = daemon.serve_connection(input.as_bytes(), Flaky { good: 1 });
        assert_eq!(outcome, ConnectionOutcome::ClientLost);
        // The daemon is unharmed: the next session works normally.
        let (lines, outcome) = serve(&daemon, "{\"id\":9,\"op\":\"ping\"}\n");
        assert_eq!(outcome, ConnectionOutcome::Eof);
        assert_eq!(decode_payload(&lines[0]).as_deref(), Some("pong\n"));
    }

    #[test]
    fn panicking_job_becomes_an_error_envelope() {
        // `sweep` with a path pointing at a directory read fails cleanly;
        // to exercise the *panic* fence we go through a fleet chaos spec.
        let daemon = Daemon::new(ServeConfig::default());
        let spec = "job boom chaos panic";
        let input = format!(
            "{{\"id\":4,\"op\":\"fleet\",\"spec\":\"{spec}\"}}\n{{\"id\":5,\"op\":\"ping\"}}\n"
        );
        let (lines, _) = serve(&daemon, &input);
        assert_eq!(lines.len(), 2, "{lines:?}");
        // The chaos job is quarantined INSIDE the fleet report (executor
        // fence), so the envelope is ok:true with a failed row — and the
        // daemon answers the next request either way.
        let by_id = |id: u64| {
            lines
                .iter()
                .find(|l| {
                    Json::parse(l)
                        .ok()
                        .and_then(|v| v.get("id").and_then(Json::as_u64))
                        == Some(id)
                })
                .cloned()
                .expect("response for id")
        };
        let fleet_line = by_id(4);
        let doc = decode_payload(&fleet_line).expect("fleet payload");
        assert!(doc.contains("panicked"), "{doc}");
        assert_eq!(decode_payload(&by_id(5)).as_deref(), Some("pong\n"));
    }

    #[test]
    fn stats_document_reports_counters() {
        let daemon = Daemon::new(ServeConfig::default());
        let model = "model tiny steps 1\\nregister R init 3\\n";
        // Two default-level (-O2) runs plus one pinned at -O0: the
        // levels key separate cache entries and separate counters.
        let input = format!(
            "{{\"id\":1,\"op\":\"run\",\"model\":\"{model}\"}}\n\
             {{\"id\":2,\"op\":\"run\",\"model\":\"{model}\"}}\n\
             {{\"id\":3,\"op\":\"run\",\"model\":\"{model}\",\"opt\":0}}\n\
             {{\"id\":4,\"op\":\"stats\"}}\n"
        );
        let (lines, _) = serve(&daemon, &input);
        assert_eq!(lines.len(), 4, "{lines:?}");
        let stats_doc = decode_payload(&lines[3]).expect("stats payload");
        let v = Json::parse(&stats_doc).expect("stats is JSON");
        let serve_block = v.get("serve").expect("serve block");
        assert_eq!(serve_block.get("opt").and_then(Json::as_u64), Some(2));
        let cache = v.get("cache").expect("cache block");
        assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(2));
        let by_level = cache.get("by_level").expect("by_level block");
        let level = |l: &str, k: &str| {
            by_level
                .get(l)
                .and_then(|b| b.get(k))
                .and_then(Json::as_u64)
        };
        assert_eq!(
            (level("2", "hits"), level("2", "misses")),
            (Some(1), Some(1))
        );
        assert_eq!(
            (level("0", "hits"), level("0", "misses")),
            (Some(0), Some(1))
        );
        assert_eq!(
            (level("1", "hits"), level("1", "misses")),
            (Some(0), Some(0))
        );
        let ops = v.get("ops").expect("ops block");
        assert_eq!(ops.get("run").and_then(Json::as_u64), Some(3));
        assert_eq!(ops.get("stats").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn run_payload_is_byte_identical_across_opt_levels() {
        let daemon = Daemon::new(ServeConfig::default());
        let model = "model tiny steps 2\\nregister R init 3\\nregister S init 4\\n";
        let input = format!(
            "{{\"id\":1,\"op\":\"run\",\"model\":\"{model}\",\"opt\":0}}\n\
             {{\"id\":2,\"op\":\"run\",\"model\":\"{model}\",\"opt\":1}}\n\
             {{\"id\":3,\"op\":\"run\",\"model\":\"{model}\",\"opt\":2}}\n\
             {{\"id\":4,\"op\":\"run\",\"model\":\"{model}\"}}\n"
        );
        let (lines, _) = serve(&daemon, &input);
        assert_eq!(lines.len(), 4, "{lines:?}");
        let payloads: Vec<String> = (0..4)
            .map(|i| decode_payload(&lines[i]).expect("run payload"))
            .collect();
        assert!(payloads[0].contains("\"registers\""), "{}", payloads[0]);
        for p in &payloads[1..] {
            assert_eq!(&payloads[0], p, "opt levels must not change the payload");
        }
    }

    #[test]
    fn faults_checkers_field_matches_the_cli_document() {
        use clockless_verify::{run_campaign, CampaignConfig, CheckerMode};

        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../models/fig1.rtl");
        let daemon = Daemon::new(ServeConfig::default());
        let input = format!(
            "{{\"id\":1,\"op\":\"faults\",\"path\":\"{path}\",\"checkers\":\"all\"}}\n\
             {{\"id\":2,\"op\":\"faults\",\"path\":\"{path}\"}}\n\
             {{\"id\":3,\"op\":\"faults\",\"path\":\"{path}\",\"checkers\":\"bogus\"}}\n"
        );
        let (lines, _) = serve(&daemon, &input);
        assert_eq!(lines.len(), 3, "{lines:?}");

        // `checkers:"all"` payload is byte-identical to the CLI document.
        let model =
            clockless_core::text::parse_model(&std::fs::read_to_string(path).expect("fig1 source"))
                .expect("fig1 parses");
        let expected = run_campaign(
            &model,
            &CampaignConfig {
                checkers: CheckerMode::All,
                ..Default::default()
            },
        )
        .expect("campaign runs")
        .to_json();
        assert_eq!(
            decode_payload(&lines[0]).as_deref(),
            Some(expected.as_str())
        );
        assert!(expected.contains("\"checkers\": \"all\""), "{expected}");

        // Omitting the field keeps the baseline-only document.
        let off = decode_payload(&lines[1]).expect("off payload");
        assert!(off.contains("\"checkers\": \"off\""), "{off}");
        assert_ne!(off, expected, "checkers must change the verdicts");

        // A bad mode is a typed request error, not a crash.
        let err = Json::parse(&lines[2]).expect("error envelope");
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad-request")
        );
    }
}
