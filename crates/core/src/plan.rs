//! Lowering elaborated models to a compiled phase-schedule plan.
//!
//! The paper's six-phase discipline makes clock-free RT models *statically
//! schedulable*: every transfer process is active at exactly one
//! `(step, phase)` slot, the controller's trajectory is fixed, and a run
//! costs exactly `1 + CS_MAX × 6` delta cycles (plus one trailing flush
//! delta when the last step commits a register). The interpreted kernel
//! discovers that schedule dynamically through sensitivity lists and wake
//! filters; [`ExecPlan::lower`] instead precomputes it as dense
//! per-`(step, phase)` tables of straight-line [`Action`]s, and
//! [`ExecPlan::execute`] walks the tables in a fixed number of iterations
//! with no event machinery at all.
//!
//! The walk is *observationally identical* to the interpreted kernel:
//! same final registers, same trace events in the same order (hence the
//! same VCD, commit log and conflict diagnoses — step and phase included)
//! and the same [`SimStats`]. Counters the compiled engine has no dynamic
//! equivalent for (process activations, wake-filter hits and misses, peak
//! runnable) are derived from the schedule in closed form; the rest
//! (events, driver updates, pending-update peaks) are counted during the
//! walk. `clockless-verify`'s `backend_equiv` asserts the byte-level
//! agreement over the whole corpus.
//!
//! Lowering additionally performs a **static conflict pre-pass**: two
//! [`Action::Assert`]s landing in the same slot of the same resolved
//! signal are reported as a [`StaticConflict`] *before* anything runs.
//! This is a conservative *potential*-conflict diagnostic — at run time
//! one of the colliding transfers may read `DISC` and resolve cleanly —
//! so the dynamic `ILLEGAL` events remain the ground truth the paper
//! describes.

use std::collections::VecDeque;

use clockless_kernel::{KernelError, SignalId, SimStats, SimTime, Trace};

use crate::backend::{ExecOptions, ExecOutcome};
use crate::diag::{Conflict, ConflictReport, ConflictSite};
use crate::elaborate::SignalRole;
use crate::model::RtModel;
use crate::op::Op;
use crate::phase::{Phase, PhaseTime, Step};
use crate::resource::ModuleTiming;
use crate::run::{RegisterCommit, RunSummary};
use crate::tuples::Endpoint;
use crate::value::{resolve, Value};

/// Where an [`Action::Assert`] takes its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Read the signal with this dense index at execution time.
    Signal(usize),
    /// Drive a constant (operation-select transfers carry the operation
    /// code as a literal).
    Const(Value),
}

/// One straight-line step of the compiled schedule.
///
/// Actions never block and never wait: each one reads current signal
/// values and schedules driver updates for the *next* delta cycle,
/// exactly as the corresponding kernel process resumption would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Controller assignment: schedule `value` on the single driver of a
    /// control signal (`CS` or `PH`).
    Control {
        /// Dense index of the control signal.
        sig: usize,
        /// The value to schedule.
        value: Value,
    },
    /// Transfer assert: read `src` now and schedule it on driver `slot`
    /// of `dst`.
    Assert {
        /// The value source.
        src: Source,
        /// Dense index of the driven signal.
        dst: usize,
        /// The transfer's driver slot on `dst`.
        slot: usize,
    },
    /// Transfer release: schedule `DISC` on driver `slot` of `dst`.
    Release {
        /// Dense index of the driven signal.
        dst: usize,
        /// The transfer's driver slot on `dst`.
        slot: usize,
    },
    /// Module evaluation (the `cm` body): combine the operand ports,
    /// advance the latency pipeline and schedule the output port.
    Eval {
        /// Dense index into the plan's module table.
        module: usize,
    },
    /// Register commit (the `cr` body): schedule the input port's value
    /// on the output unless it is `DISC`.
    Commit {
        /// Dense index into the plan's register table.
        reg: usize,
    },
}

/// A multiply driven slot found by the static conflict pre-pass.
///
/// Two or more transfers assert the same resolved signal in the same
/// `(step, phase)` slot. This is a *potential* conflict: it becomes the
/// paper's observable `ILLEGAL` only if at least two of the colliding
/// sources carry non-`DISC` values at run time, in which case the
/// `ILLEGAL` value is visible from the phase *after* `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticConflict {
    /// Name of the multiply driven resource.
    pub name: String,
    /// Kind of resource.
    pub site: ConflictSite,
    /// The slot whose schedule drives the resource more than once.
    pub at: PhaseTime,
    /// How many drives the slot schedules.
    pub drivers: usize,
}

impl std::fmt::Display for StaticConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} `{}` driven {} times at {}",
            self.site, self.name, self.drivers, self.at
        )
    }
}

/// One signal of the plan, mirroring the kernel's elaboration order.
#[derive(Debug, Clone)]
struct PlanSignal {
    name: String,
    init: Value,
    /// Number of driver slots (process-attachment order, exactly as the
    /// kernel would attach them).
    drivers: usize,
    /// Whether the signal resolves colliding drivers (buses and ports).
    resolved: bool,
    role: SignalRole,
}

/// One register: dense indices of its port signals.
#[derive(Debug, Clone)]
struct PlanReg {
    name: String,
    input: usize,
    output: usize,
}

/// One functional module: port indices plus operation/timing data.
#[derive(Debug, Clone)]
struct PlanModule {
    in1: usize,
    in2: usize,
    /// Operation-select port (multi-operation modules only).
    op: Option<usize>,
    out: usize,
    ops: Vec<Op>,
    timing: ModuleTiming,
}

/// A transfer spec resolved to dense indices (lowering intermediate).
struct LoweredSpec {
    step: Step,
    phase: Phase,
    src: Source,
    dst: usize,
    slot: usize,
}

/// The compiled execution plan of one [`RtModel`].
///
/// Built by [`lower`](ExecPlan::lower); executed by
/// [`execute`](ExecPlan::execute). Slot `(s, p)` holds the straight-line
/// actions the kernel's runnable set would perform in the delta cycle of
/// step `s`, phase `p` — in the kernel's exact execution order, so driver
/// updates (and therefore events, traces and conflict diagnoses) come out
/// byte-identical.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    cs_max: Step,
    signals: Vec<PlanSignal>,
    regs: Vec<PlanReg>,
    modules: Vec<PlanModule>,
    /// Actions of the initialization delta (delta 0).
    init_actions: Vec<Action>,
    /// `slots[(s-1)*6 + p.index()]` = actions of step `s`, phase `p`
    /// (executed in delta `(s-1)*6 + p.index() + 1`).
    slots: Vec<Vec<Action>>,
    /// Whether a trailing flush delta follows `cr(CS_MAX)`. Statically
    /// determined: some transfer asserts a register input at
    /// `wb(CS_MAX)`, so its commit and release are still pending after
    /// the last scheduled phase.
    flush: bool,
    static_conflicts: Vec<StaticConflict>,
    /// Analytic stats derived from the schedule (see module docs).
    process_count: u64,
    activations: u64,
    wake_hits: u64,
    wake_misses: u64,
}

impl ExecPlan {
    /// Lowers a validated model into its compiled plan.
    ///
    /// Panics if the model references undeclared resources — impossible
    /// for models built through [`RtModel`]'s validating API.
    pub fn lower(model: &RtModel) -> ExecPlan {
        let cs_max = model.cs_max();
        let mut signals: Vec<PlanSignal> = Vec::new();

        // Signal order mirrors `elaborate` exactly: CS, PH, register
        // ports, buses, module ports.
        let cs = signals.len();
        signals.push(PlanSignal {
            name: "CS".into(),
            init: Value::Num(0),
            drivers: 0,
            resolved: false,
            role: SignalRole::ControlStep,
        });
        let ph = signals.len();
        signals.push(PlanSignal {
            name: "PH".into(),
            init: Value::Num(Phase::LAST.index() as i64),
            drivers: 0,
            resolved: false,
            role: SignalRole::PhaseSignal,
        });

        let mut regs = Vec::new();
        for r in model.registers() {
            let input = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_in", r.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::RegIn(r.name.clone()),
            });
            let output = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_out", r.name),
                init: r.init,
                drivers: 0,
                resolved: false,
                role: SignalRole::RegOut(r.name.clone()),
            });
            regs.push(PlanReg {
                name: r.name.clone(),
                input,
                output,
            });
        }

        let mut bus_sig = Vec::new();
        for b in model.buses() {
            let s = signals.len();
            signals.push(PlanSignal {
                name: b.name.clone(),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::Bus(b.name.clone()),
            });
            bus_sig.push(s);
        }

        let mut modules = Vec::new();
        for m in model.modules() {
            let in1 = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_in1", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::ModIn1(m.name.clone()),
            });
            let in2 = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_in2", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: true,
                role: SignalRole::ModIn2(m.name.clone()),
            });
            let op = if m.needs_op_port() {
                let s = signals.len();
                signals.push(PlanSignal {
                    name: format!("{}_op", m.name),
                    init: Value::Disc,
                    drivers: 0,
                    resolved: true,
                    role: SignalRole::ModOp(m.name.clone()),
                });
                Some(s)
            } else {
                None
            };
            let out = signals.len();
            signals.push(PlanSignal {
                name: format!("{}_out", m.name),
                init: Value::Disc,
                drivers: 0,
                resolved: false,
                role: SignalRole::ModOut(m.name.clone()),
            });
            modules.push(PlanModule {
                in1,
                in2,
                op,
                out,
                ops: m.ops.clone(),
                timing: m.timing,
            });
        }

        // Driver attachment in process-creation order, mirroring the
        // kernel: controller, register procs, module procs, transfers.
        signals[cs].drivers = 1;
        signals[ph].drivers = 1;
        for r in &regs {
            signals[r.output].drivers += 1;
        }
        for m in &modules {
            signals[m.out].drivers += 1;
        }

        let index_of = |endpoint: &Endpoint| -> Option<usize> {
            match endpoint {
                Endpoint::RegOut(r) => model
                    .register_by_name(r)
                    .map(|id| regs[id.0 as usize].output),
                Endpoint::RegIn(r) => model
                    .register_by_name(r)
                    .map(|id| regs[id.0 as usize].input),
                Endpoint::Bus(b) => model.bus_by_name(b).map(|id| bus_sig[id.0 as usize]),
                Endpoint::ModIn1(m) => model.module_by_name(m).map(|id| modules[id.0 as usize].in1),
                Endpoint::ModIn2(m) => model.module_by_name(m).map(|id| modules[id.0 as usize].in2),
                Endpoint::ModOut(m) => model.module_by_name(m).map(|id| modules[id.0 as usize].out),
                Endpoint::ModOp(m) => model
                    .module_by_name(m)
                    .and_then(|id| modules[id.0 as usize].op),
                Endpoint::ConstOp(_) => None,
            }
        };

        let mut specs: Vec<LoweredSpec> = Vec::new();
        for tuple in model.tuples() {
            for spec in tuple.expand() {
                let src = match &spec.src {
                    Endpoint::ConstOp(op) => {
                        let mid = model
                            .module_by_name(&tuple.module)
                            .expect("validated tuple references known module");
                        let idx = model.modules()[mid.0 as usize]
                            .op_index(*op)
                            .expect("validated tuple selects supported op");
                        Source::Const(Value::Num(idx as i64))
                    }
                    other => Source::Signal(
                        index_of(other).expect("validated tuple references known resources"),
                    ),
                };
                let dst = index_of(&spec.dst).expect("validated tuple references known resources");
                let slot = signals[dst].drivers;
                signals[dst].drivers += 1;
                specs.push(LoweredSpec {
                    step: spec.step,
                    phase: spec.phase,
                    src,
                    dst,
                    slot,
                });
            }
        }

        // Slot tables: for each delta of each step, the actions in the
        // kernel's runnable-set order (derived from waiter-list and wake
        // positions; see ARCHITECTURE.md "Two engines, one semantics").
        let num_slots = cs_max as usize * Phase::ALL.len();
        let mut slots: Vec<Vec<Action>> = vec![Vec::new(); num_slots];
        let ph_to = |p: Phase| Action::Control {
            sig: ph,
            value: Value::Num(p.index() as i64),
        };
        for s in 1..=cs_max {
            let base = (s as usize - 1) * Phase::ALL.len();
            let step_specs = || specs.iter().filter(|sp| sp.step == s);

            // ra: step specs wake before the controller (CS is processed
            // before PH in the wake queue). Only Ra specs assert here.
            let ra = &mut slots[base + Phase::Ra.index() as usize];
            for sp in step_specs().filter(|sp| sp.phase == Phase::Ra) {
                ra.push(Action::Assert {
                    src: sp.src,
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }
            ra.push(ph_to(Phase::Rb));

            // rb: controller first, then Ra releases / Rb asserts
            // interleaved in declaration order (both re-registered at the
            // end of PH's waiter list during ra).
            let rb = &mut slots[base + Phase::Rb.index() as usize];
            rb.push(ph_to(Phase::Cm));
            for sp in step_specs() {
                match sp.phase {
                    Phase::Ra => rb.push(Action::Release {
                        dst: sp.dst,
                        slot: sp.slot,
                    }),
                    Phase::Rb => rb.push(Action::Assert {
                        src: sp.src,
                        dst: sp.dst,
                        slot: sp.slot,
                    }),
                    _ => {}
                }
            }

            // cm: controller, all modules (original waiter positions),
            // then Rb releases.
            let cm = &mut slots[base + Phase::Cm.index() as usize];
            cm.push(ph_to(Phase::Wa));
            for i in 0..modules.len() {
                cm.push(Action::Eval { module: i });
            }
            for sp in step_specs().filter(|sp| sp.phase == Phase::Rb) {
                cm.push(Action::Release {
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }

            // wa: controller, then Wa asserts.
            let wa = &mut slots[base + Phase::Wa.index() as usize];
            wa.push(ph_to(Phase::Wb));
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wa) {
                wa.push(Action::Assert {
                    src: sp.src,
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }

            // wb: controller, Wb asserts (original positions), then Wa
            // releases (re-registered at the end during wa).
            let wb = &mut slots[base + Phase::Wb.index() as usize];
            wb.push(ph_to(Phase::Cr));
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wb) {
                wb.push(Action::Assert {
                    src: sp.src,
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wa) {
                wb.push(Action::Release {
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }

            // cr: controller advances (CS before PH, matching its push
            // order; nothing on the last step), registers commit, then
            // Wb releases.
            let cr = &mut slots[base + Phase::Cr.index() as usize];
            if s < cs_max {
                cr.push(Action::Control {
                    sig: cs,
                    value: Value::Num(s as i64 + 1),
                });
                cr.push(ph_to(Phase::Ra));
            }
            for i in 0..regs.len() {
                cr.push(Action::Commit { reg: i });
            }
            for sp in step_specs().filter(|sp| sp.phase == Phase::Wb) {
                cr.push(Action::Release {
                    dst: sp.dst,
                    slot: sp.slot,
                });
            }
        }

        let init_actions = if cs_max >= 1 {
            vec![
                Action::Control {
                    sig: cs,
                    value: Value::Num(1),
                },
                ph_to(Phase::Ra),
            ]
        } else {
            Vec::new()
        };

        // A commit at cr(CS_MAX) (and its paired release) leaves pending
        // updates after the last scheduled phase if and only if some
        // transfer asserts a register input at wb(CS_MAX).
        let flush = cs_max >= 1
            && specs
                .iter()
                .any(|sp| sp.phase == Phase::Wb && sp.step == cs_max);

        // Static conflict pre-pass: multiple asserts into one slot of one
        // signal, reported in slot order then first-drive order.
        let mut static_conflicts = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            let mut counts: Vec<(usize, usize)> = Vec::new();
            for action in slot {
                if let Action::Assert { dst, .. } = action {
                    match counts.iter_mut().find(|(d, _)| d == dst) {
                        Some((_, n)) => *n += 1,
                        None => counts.push((*dst, 1)),
                    }
                }
            }
            for (dst, n) in counts.into_iter().filter(|&(_, n)| n > 1) {
                let at = PhaseTime::from_active_delta(i as u64 + 1)
                    .expect("slot deltas are active by construction");
                let (site, name) = match &signals[dst].role {
                    SignalRole::Bus(n) => (ConflictSite::Bus, n.clone()),
                    SignalRole::ModIn1(n) | SignalRole::ModIn2(n) => {
                        (ConflictSite::ModulePort, n.clone())
                    }
                    SignalRole::ModOp(n) => (ConflictSite::ModuleOpPort, n.clone()),
                    SignalRole::ModOut(n) => (ConflictSite::ModuleOut, n.clone()),
                    SignalRole::RegIn(n) => (ConflictSite::RegisterPort, n.clone()),
                    SignalRole::RegOut(n) => (ConflictSite::RegisterValue, n.clone()),
                    SignalRole::ControlStep | SignalRole::PhaseSignal => continue,
                };
                static_conflicts.push(StaticConflict {
                    name,
                    site,
                    at,
                    drivers: n,
                });
            }
        }

        // Analytic kernel statistics (derived in closed form; the
        // differential suite pins them against the interpreted run).
        let steps = cs_max as u64;
        let fixed_procs = (regs.len() + modules.len()) as u64;
        let mut activations = 1 + 6 * steps + fixed_procs * (1 + steps);
        let mut wake_hits = fixed_procs * steps;
        let mut wake_misses = fixed_procs * 5 * steps;
        for sp in &specs {
            if (1..=cs_max).contains(&sp.step) {
                // CS filter: misses while CS counts up to the step, one
                // hit when it arrives.
                wake_hits += 1;
                wake_misses += sp.step as u64 - 1;
                if sp.phase == Phase::Ra {
                    // init + assert + release; PH filter hits once (the
                    // release phase).
                    activations += 3;
                    wake_hits += 1;
                } else {
                    // init + arm + assert + release; PH misses phases
                    // between ra and the assert phase, hits twice.
                    activations += 4;
                    wake_hits += 2;
                    wake_misses += sp.phase.index() as u64 - 1;
                }
            } else {
                // Defensive: a spec outside the schedule only ever runs
                // its init resume and watches CS miss every step.
                activations += 1;
                wake_misses += steps;
            }
        }
        let process_count = 1 + fixed_procs + specs.len() as u64;

        ExecPlan {
            cs_max,
            signals,
            regs,
            modules,
            init_actions,
            slots,
            flush,
            static_conflicts,
            process_count,
            activations,
            wake_hits,
            wake_misses,
        }
    }

    /// Maximum control step of the lowered model.
    pub fn cs_max(&self) -> Step {
        self.cs_max
    }

    /// Exact number of delta cycles a run of this plan executes — fixed
    /// by the schedule, known before anything runs.
    pub fn total_deltas(&self) -> u64 {
        1 + self.cs_max as u64 * Phase::ALL.len() as u64 + u64::from(self.flush)
    }

    /// The statically detected multiply driven slots (see
    /// [`StaticConflict`]).
    pub fn static_conflicts(&self) -> &[StaticConflict] {
        &self.static_conflicts
    }

    /// The scheduled actions of one `(step, phase)` slot, or `None` when
    /// `step` is outside `1..=CS_MAX`.
    pub fn actions(&self, step: Step, phase: Phase) -> Option<&[Action]> {
        if step < 1 || step > self.cs_max {
            return None;
        }
        let i = (step as usize - 1) * Phase::ALL.len() + phase.index() as usize;
        Some(self.slots[i].as_slice())
    }

    /// Walks the plan and harvests the observable output.
    ///
    /// # Errors
    ///
    /// [`KernelError::DeltaOverflow`] when [`total_deltas`](Self::total_deltas)
    /// exceeds the delta budget (diagnosed up front — the schedule length
    /// is static), [`KernelError::WallBudgetExceeded`] when the deadline
    /// passes mid-walk.
    pub fn execute(&self, options: &ExecOptions) -> Result<ExecOutcome, KernelError> {
        let delta_limit = options.delta_limit.unwrap_or(100_000_000);
        let needed = self.total_deltas();
        if needed > delta_limit {
            return Err(KernelError::DeltaOverflow {
                at: SimTime {
                    fs: 0,
                    delta: delta_limit,
                },
                limit: delta_limit,
            });
        }

        let mut values: Vec<Value> = self.signals.iter().map(|s| s.init).collect();
        let mut drivers: Vec<Vec<Value>> = self
            .signals
            .iter()
            .map(|s| vec![s.init; s.drivers])
            .collect();
        let mut pipes: Vec<VecDeque<Value>> = self
            .modules
            .iter()
            .map(|m| VecDeque::from(vec![Value::Disc; m.timing.latency() as usize]))
            .collect();
        let mut busy: Vec<u32> = vec![0; self.modules.len()];

        let mut trace: Option<Trace<Value>> = options.trace.then(Trace::new);
        // (delta, signal, value) of every event, for conflict/commit
        // extraction; only kept while tracing.
        let mut events: Vec<(u64, usize, Value)> = Vec::new();
        if let Some(t) = &mut trace {
            for (i, s) in self.signals.iter().enumerate() {
                t.push(SimTime::ZERO, SignalId::from_index(i), s.init);
            }
        }

        let mut stats = SimStats {
            process_activations: self.activations,
            wake_filter_hits: self.wake_hits,
            wake_filter_misses: self.wake_misses,
            // The initialization delta runs every process at once — the
            // high-water mark of the whole run.
            peak_runnable: self.process_count,
            ..SimStats::default()
        };

        let mut pending: Vec<(usize, usize, Value)> = Vec::new();
        for d in 0..needed {
            stats.peak_pending_updates = stats.peak_pending_updates.max(pending.len() as u64);

            // Update phase: apply scheduled driver transactions in push
            // order, recomputing effective values one transaction at a
            // time (two drives of one signal in one delta each produce
            // their own event, exactly like the kernel).
            let updates = std::mem::take(&mut pending);
            for (sig, slot, value) in updates {
                stats.driver_updates += 1;
                drivers[sig][slot] = value;
                let effective = if self.signals[sig].resolved {
                    resolve(&drivers[sig])
                } else {
                    drivers[sig][0]
                };
                if effective != values[sig] {
                    values[sig] = effective;
                    stats.events += 1;
                    if let Some(t) = &mut trace {
                        t.push(
                            SimTime { fs: 0, delta: d },
                            SignalId::from_index(sig),
                            effective,
                        );
                        events.push((d, sig, effective));
                    }
                }
            }

            // Run phase: the slot's straight-line actions.
            let actions: &[Action] = if d == 0 {
                &self.init_actions
            } else {
                self.slots
                    .get(d as usize - 1)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]) // trailing flush delta: updates only
            };
            for &action in actions {
                match action {
                    Action::Control { sig, value } => pending.push((sig, 0, value)),
                    Action::Assert { src, dst, slot } => {
                        let v = match src {
                            Source::Signal(s) => values[s],
                            Source::Const(v) => v,
                        };
                        pending.push((dst, slot, v));
                    }
                    Action::Release { dst, slot } => pending.push((dst, slot, Value::Disc)),
                    Action::Eval { module } => {
                        let m = &self.modules[module];
                        let mut result = combine(
                            values[m.in1],
                            values[m.in2],
                            m.op.map(|p| values[p]),
                            &m.ops,
                        );
                        if let ModuleTiming::Sequential { latency } = m.timing {
                            if busy[module] > 0 {
                                busy[module] -= 1;
                                if result != Value::Disc {
                                    // Initiation-interval violation:
                                    // poison the whole pipeline.
                                    result = Value::Illegal;
                                    for v in pipes[module].iter_mut() {
                                        *v = Value::Illegal;
                                    }
                                }
                            } else if result != Value::Disc {
                                busy[module] = latency.saturating_sub(1);
                            }
                        }
                        let pipe = &mut pipes[module];
                        match pipe.pop_front() {
                            None => pending.push((m.out, 0, result)),
                            Some(due) => {
                                pending.push((m.out, 0, due));
                                pipe.push_back(result);
                            }
                        }
                    }
                    Action::Commit { reg } => {
                        let r = &self.regs[reg];
                        let v = values[r.input];
                        if v != Value::Disc {
                            pending.push((r.output, 0, v));
                        }
                    }
                }
            }

            if let Some(deadline) = options.deadline {
                if std::time::Instant::now() >= deadline {
                    return Err(KernelError::WallBudgetExceeded {
                        at: SimTime {
                            fs: 0,
                            delta: d + 1,
                        },
                    });
                }
            }
        }
        stats.delta_cycles = needed;

        let registers: Vec<(String, Value)> = self
            .regs
            .iter()
            .map(|r| (r.name.clone(), values[r.output]))
            .collect();

        let conflicts = trace.as_ref().map(|_| self.dynamic_conflicts(&events));
        let commits = trace.as_ref().map(|_| self.commit_log(&events));
        let vcd = trace.as_ref().map(|t| {
            let names: Vec<String> = self.signals.iter().map(|s| s.name.clone()).collect();
            t.to_vcd(&names)
        });

        Ok(ExecOutcome {
            summary: RunSummary {
                stats,
                registers,
                conflicts,
            },
            commits,
            vcd,
        })
    }

    /// `ILLEGAL`-valued events localized to step and phase (the same
    /// extraction `RtSimulation::conflicts` performs on the trace).
    fn dynamic_conflicts(&self, events: &[(u64, usize, Value)]) -> ConflictReport {
        let mut conflicts = Vec::new();
        for &(delta, sig, value) in events {
            if value != Value::Illegal {
                continue;
            }
            let Some(visible_at) = PhaseTime::from_active_delta(delta) else {
                continue;
            };
            let (site, name) = match &self.signals[sig].role {
                SignalRole::Bus(n) => (ConflictSite::Bus, n.clone()),
                SignalRole::ModIn1(n) | SignalRole::ModIn2(n) => {
                    (ConflictSite::ModulePort, n.clone())
                }
                SignalRole::ModOp(n) => (ConflictSite::ModuleOpPort, n.clone()),
                SignalRole::ModOut(n) => (ConflictSite::ModuleOut, n.clone()),
                SignalRole::RegIn(n) => (ConflictSite::RegisterPort, n.clone()),
                SignalRole::RegOut(n) => (ConflictSite::RegisterValue, n.clone()),
                SignalRole::ControlStep | SignalRole::PhaseSignal => continue,
            };
            conflicts.push(Conflict {
                site,
                name,
                visible_at,
            });
        }
        ConflictReport { conflicts }
    }

    /// Register-output events attributed to the storing step (the same
    /// extraction `RtSimulation::register_commits` performs).
    fn commit_log(&self, events: &[(u64, usize, Value)]) -> Vec<RegisterCommit> {
        let mut commits = Vec::new();
        for &(delta, sig, value) in events {
            let SignalRole::RegOut(name) = &self.signals[sig].role else {
                continue;
            };
            let Some(pt) = PhaseTime::from_active_delta(delta) else {
                continue; // initial value, not a commit
            };
            commits.push(RegisterCommit {
                register: name.clone(),
                step: pt.step - 1,
                value,
            });
        }
        commits
    }
}

/// Combines module operand ports into a result, mirroring the module
/// process: the op port (when present) selects the operation by index;
/// `DISC` selection with live operands and out-of-range selections are
/// `ILLEGAL`.
fn combine(a: Value, b: Value, op_sel: Option<Value>, ops: &[Op]) -> Value {
    let op = match op_sel {
        None => ops[0],
        Some(Value::Disc) => {
            return if a == Value::Disc && b == Value::Disc {
                Value::Disc
            } else {
                Value::Illegal
            };
        }
        Some(Value::Illegal) => return Value::Illegal,
        Some(Value::Num(i)) => match usize::try_from(i).ok().and_then(|i| ops.get(i)) {
            Some(&op) => op,
            None => return Value::Illegal,
        },
    };
    op.apply(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, ExecOptions};
    use crate::model::{fig1_model, RtModel};
    use crate::op::Op;
    use crate::resource::{ModuleDecl, ModuleTiming};
    use crate::run::RtSimulation;
    use crate::tuples::TransferTuple;

    fn interpreted_traced(model: &RtModel) -> crate::backend::ExecOutcome {
        Backend::Interpreted
            .execute(model, &ExecOptions::traced())
            .unwrap()
    }

    fn compiled_traced(model: &RtModel) -> crate::backend::ExecOutcome {
        Backend::Compiled
            .execute(model, &ExecOptions::traced())
            .unwrap()
    }

    fn assert_equivalent(model: &RtModel) {
        let i = interpreted_traced(model);
        let c = compiled_traced(model);
        assert_eq!(i.summary.registers, c.summary.registers, "registers");
        assert_eq!(i.summary.stats, c.summary.stats, "stats");
        assert_eq!(
            i.summary.conflicts.as_ref().map(|r| &r.conflicts),
            c.summary.conflicts.as_ref().map(|r| &r.conflicts),
            "conflicts"
        );
        assert_eq!(i.commits, c.commits, "commits");
        assert_eq!(i.vcd, c.vcd, "vcd");
    }

    #[test]
    fn fig1_is_byte_equivalent() {
        assert_equivalent(&fig1_model(3, 4));
    }

    #[test]
    fn fig1_plan_shape() {
        let model = fig1_model(3, 4);
        let plan = ExecPlan::lower(&model);
        assert_eq!(plan.cs_max(), 7);
        assert_eq!(plan.total_deltas(), 43); // 1 + 7*6, no flush
        assert!(plan.static_conflicts().is_empty());
        // Step 5 ra: two register reads plus the controller advance.
        assert_eq!(plan.actions(5, Phase::Ra).unwrap().len(), 3);
        // An unscheduled step still carries the controller skeleton.
        assert_eq!(plan.actions(1, Phase::Ra).unwrap().len(), 1);
        assert!(plan.actions(8, Phase::Ra).is_none());
        assert!(plan.actions(0, Phase::Ra).is_none());
    }

    #[test]
    fn fig1_analytic_stats_match_interpreted() {
        let model = fig1_model(3, 4);
        let out = compiled_traced(&model);
        let s = out.summary.stats;
        assert_eq!(s.delta_cycles, 43);
        assert_eq!(s.process_activations, 89);
        assert_eq!(s.wake_filter_hits, 37);
        assert_eq!(s.wake_filter_misses, 136);
        assert_eq!(s.time_advances, 0);
    }

    /// A model whose only write lands at `wb(CS_MAX)`, forcing the
    /// trailing flush delta.
    fn flush_model() -> RtModel {
        let mut model = RtModel::new("flush", 2);
        model.add_register_init("R1", Value::Num(3)).unwrap();
        model.add_register_init("R2", Value::Num(4)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(1, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R2", "B2")
                    .write(2, "B1", "R1"),
            )
            .unwrap();
        model
    }

    #[test]
    fn write_at_last_step_takes_the_flush_delta() {
        let model = flush_model();
        let plan = ExecPlan::lower(&model);
        assert!(plan.flush);
        assert_eq!(plan.total_deltas(), 14); // 1 + 2*6 + flush
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        assert_eq!(out.summary.register("R1"), Some(Value::Num(7)));
        assert_eq!(out.summary.stats.delta_cycles, 14);
    }

    #[test]
    fn model_without_transfers_is_byte_equivalent() {
        let mut model = RtModel::new("idle", 3);
        model.add_register_init("R1", Value::Num(9)).unwrap();
        model.add_bus("B1").unwrap();
        let plan = ExecPlan::lower(&model);
        assert!(!plan.flush);
        assert_eq!(plan.total_deltas(), 19);
        assert_equivalent(&model);
    }

    #[test]
    fn disc_init_registers_are_byte_equivalent() {
        // fig1 structure but with uninitialized (DISC) registers: the
        // ADD sees DISC operands and the commit never fires.
        let model = fig1_model_disc();
        assert_equivalent(&model);
        let out = compiled_traced(&model);
        assert_eq!(out.summary.register("R1"), Some(Value::Disc));
    }

    fn fig1_model_disc() -> RtModel {
        let mut model = RtModel::new("fig1_disc", 7);
        model.add_register("R1").unwrap();
        model.add_register("R2").unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(5, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R2", "B2")
                    .write(6, "B1", "R1"),
            )
            .unwrap();
        model
    }

    #[test]
    fn bus_conflict_is_found_statically_and_dynamically() {
        // Two transfers read different registers onto the same bus at the
        // same step: B1 is driven twice at ra(1).
        let mut model = RtModel::new("clash", 3);
        model.add_register_init("R1", Value::Num(1)).unwrap();
        model.add_register_init("R2", Value::Num(2)).unwrap();
        model.add_register_init("R3", Value::Num(3)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_module(ModuleDecl::single(
                "CPY",
                Op::PassA,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(1, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R3", "B2")
                    .write(2, "B2", "R3"),
            )
            .unwrap();
        model
            .add_transfer(TransferTuple::new(1, "CPY").src_a("R2", "B1"))
            .unwrap();

        let plan = ExecPlan::lower(&model);
        let stat = plan
            .static_conflicts()
            .iter()
            .find(|c| c.name == "B1")
            .expect("static pre-pass flags the shared bus");
        assert_eq!(stat.site, ConflictSite::Bus);
        assert_eq!(stat.at, PhaseTime::new(1, Phase::Ra));
        assert_eq!(stat.drivers, 2);

        assert_equivalent(&model);
        let out = compiled_traced(&model);
        let report = out.summary.conflicts.unwrap();
        assert!(
            report.on("B1").any(|c| c.site == ConflictSite::Bus),
            "{report:?}"
        );
    }

    #[test]
    fn clean_model_has_no_static_conflicts() {
        assert!(ExecPlan::lower(&fig1_model(3, 4))
            .static_conflicts()
            .is_empty());
    }

    #[test]
    fn delta_overflow_is_diagnosed_up_front() {
        let model = fig1_model(3, 4);
        let plan = ExecPlan::lower(&model);
        let opts = ExecOptions {
            delta_limit: Some(10),
            ..Default::default()
        };
        let err = plan.execute(&opts).unwrap_err();
        assert!(
            matches!(err, KernelError::DeltaOverflow { limit: 10, .. }),
            "{err}"
        );
        // The interpreted kernel fails the same way with the same budget.
        let mut sim = RtSimulation::new(&model).unwrap();
        sim.set_delta_limit(10);
        let ierr = sim.run_to_completion().unwrap_err();
        assert_eq!(err, ierr);
        // And the exact budget passes both.
        let opts = ExecOptions {
            delta_limit: Some(43),
            ..Default::default()
        };
        assert!(plan.execute(&opts).is_ok());
    }

    #[test]
    fn zero_step_model_runs_one_delta() {
        let mut model = RtModel::new("empty", 0);
        model.add_register_init("R1", Value::Num(5)).unwrap();
        let plan = ExecPlan::lower(&model);
        assert_eq!(plan.total_deltas(), 1);
        assert_equivalent(&model);
    }

    #[test]
    fn sequential_module_models_are_byte_equivalent() {
        // A sequential multiplier with latency 2, plus a second transfer
        // violating its initiation interval (poisoned pipeline).
        for violate in [false, true] {
            let mut model = RtModel::new("seq", 6);
            model.add_register_init("R1", Value::Num(3)).unwrap();
            model.add_register_init("R2", Value::Num(4)).unwrap();
            model.add_register_init("R3", Value::Num(5)).unwrap();
            model.add_bus("B1").unwrap();
            model.add_bus("B2").unwrap();
            model
                .add_module(ModuleDecl::single(
                    "MUL",
                    Op::Mul,
                    ModuleTiming::Sequential { latency: 2 },
                ))
                .unwrap();
            model
                .add_transfer(
                    TransferTuple::new(1, "MUL")
                        .src_a("R1", "B1")
                        .src_b("R2", "B2")
                        .write(3, "B1", "R1"),
                )
                .unwrap();
            if violate {
                model
                    .add_transfer(
                        TransferTuple::new(2, "MUL")
                            .src_a("R3", "B1")
                            .src_b("R2", "B2")
                            .write(4, "B2", "R3"),
                    )
                    .unwrap();
            }
            assert_equivalent(&model);
        }
    }
}
