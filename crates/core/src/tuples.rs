//! Register transfers as 9-tuples, and their expansion into transfer
//! processes.
//!
//! The paper denotes a concrete register transfer by the tuple
//!
//! ```text
//! (R1, B1, R2, B2, 5, ADD, 6, B1, R1)
//! ```
//!
//! read as: *in control step 5, route register `R1` over bus `B1` to the
//! left input of module `ADD` and `R2` over `B2` to its right input; in
//! step 6 route the module's output over `B1` into register `R1`*. Partial
//! tuples use `-` for absent elements. §2.7 gives the straightforward,
//! bidirectional mapping between tuples and transfer-process instances;
//! [`TransferTuple::expand`] implements the forward direction (the reverse
//! lives in `clockless-verify`).
//!
//! The IKS extension (§3) adds an operation selector: our textual form is
//! `MODULE:op` in the module position.

use std::fmt;
use std::str::FromStr;

use crate::op::Op;
use crate::phase::{Phase, Step};

/// One operand route: a register read onto a bus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OperandRoute {
    /// Source register name.
    pub register: String,
    /// Bus carrying the value to the module port.
    pub bus: String,
}

impl OperandRoute {
    /// Creates a route from register to bus.
    pub fn new(register: impl Into<String>, bus: impl Into<String>) -> OperandRoute {
        OperandRoute {
            register: register.into(),
            bus: bus.into(),
        }
    }
}

/// The result route: module output over a bus into a register.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WriteRoute {
    /// Control step of the write-back (`wa`/`wb` phases).
    pub step: Step,
    /// Bus carrying the result.
    pub bus: String,
    /// Destination register name.
    pub register: String,
}

impl WriteRoute {
    /// Creates a write-back route.
    pub fn new(step: Step, bus: impl Into<String>, register: impl Into<String>) -> WriteRoute {
        WriteRoute {
            step,
            bus: bus.into(),
            register: register.into(),
        }
    }
}

/// A register transfer: the paper's 9-tuple plus the IKS operation
/// extension.
///
/// # Examples
///
/// The transfer of paper Fig. 1:
///
/// ```
/// use clockless_core::tuples::TransferTuple;
///
/// let t: TransferTuple = "(R1,B1,R2,B2,5,ADD,6,B1,R1)".parse()?;
/// assert_eq!(t.read_step, 5);
/// assert_eq!(t.module, "ADD");
/// assert_eq!(t.to_string(), "(R1,B1,R2,B2,5,ADD,6,B1,R1)");
/// # Ok::<(), clockless_core::tuples::ParseTupleError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferTuple {
    /// Route for the module's first (left) operand, if used.
    pub src_a: Option<OperandRoute>,
    /// Route for the module's second (right) operand, if used.
    pub src_b: Option<OperandRoute>,
    /// Control step in which operands are read (`ra`/`rb` phases).
    pub read_step: Step,
    /// The functional module performing the operation.
    pub module: String,
    /// Operation selector for multi-operation modules (IKS extension,
    /// §3). `None` for single-operation modules.
    pub op: Option<Op>,
    /// Result route, if the transfer writes a register this tuple.
    pub write: Option<WriteRoute>,
}

impl TransferTuple {
    /// Starts building a tuple for `module` with operands read at
    /// `read_step`.
    pub fn new(read_step: Step, module: impl Into<String>) -> TransferTuple {
        TransferTuple {
            src_a: None,
            src_b: None,
            read_step,
            module: module.into(),
            op: None,
            write: None,
        }
    }

    /// Sets the first-operand route.
    pub fn src_a(mut self, register: impl Into<String>, bus: impl Into<String>) -> Self {
        self.src_a = Some(OperandRoute::new(register, bus));
        self
    }

    /// Sets the second-operand route.
    pub fn src_b(mut self, register: impl Into<String>, bus: impl Into<String>) -> Self {
        self.src_b = Some(OperandRoute::new(register, bus));
        self
    }

    /// Sets the operation selector (IKS extension).
    pub fn op(mut self, op: Op) -> Self {
        self.op = Some(op);
        self
    }

    /// Sets the write-back route.
    pub fn write(
        mut self,
        step: Step,
        bus: impl Into<String>,
        register: impl Into<String>,
    ) -> Self {
        self.write = Some(WriteRoute::new(step, bus, register));
        self
    }

    /// Expands the tuple into its transfer-process specifications,
    /// following the mapping of §2.7: up to two `ra`-phase, two
    /// `rb`-phase, one `wa`-phase and one `wb`-phase processes, plus the
    /// operation-select process for multi-operation modules.
    pub fn expand(&self) -> Vec<TransferSpec> {
        let mut out = Vec::with_capacity(7);
        if let Some(a) = &self.src_a {
            out.push(TransferSpec {
                step: self.read_step,
                phase: Phase::Ra,
                src: Endpoint::RegOut(a.register.clone()),
                dst: Endpoint::Bus(a.bus.clone()),
            });
            out.push(TransferSpec {
                step: self.read_step,
                phase: Phase::Rb,
                src: Endpoint::Bus(a.bus.clone()),
                dst: Endpoint::ModIn1(self.module.clone()),
            });
        }
        if let Some(b) = &self.src_b {
            out.push(TransferSpec {
                step: self.read_step,
                phase: Phase::Ra,
                src: Endpoint::RegOut(b.register.clone()),
                dst: Endpoint::Bus(b.bus.clone()),
            });
            out.push(TransferSpec {
                step: self.read_step,
                phase: Phase::Rb,
                src: Endpoint::Bus(b.bus.clone()),
                dst: Endpoint::ModIn2(self.module.clone()),
            });
        }
        if let Some(op) = self.op {
            out.push(TransferSpec {
                step: self.read_step,
                phase: Phase::Rb,
                src: Endpoint::ConstOp(op),
                dst: Endpoint::ModOp(self.module.clone()),
            });
        }
        if let Some(w) = &self.write {
            out.push(TransferSpec {
                step: w.step,
                phase: Phase::Wa,
                src: Endpoint::ModOut(self.module.clone()),
                dst: Endpoint::Bus(w.bus.clone()),
            });
            out.push(TransferSpec {
                step: w.step,
                phase: Phase::Wb,
                src: Endpoint::Bus(w.bus.clone()),
                dst: Endpoint::RegIn(w.register.clone()),
            });
        }
        out
    }
}

/// A connection endpoint of one transfer process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A register's output port (transfer source).
    RegOut(String),
    /// A register's input port (transfer sink).
    RegIn(String),
    /// A bus (source or sink).
    Bus(String),
    /// A module's first operand port (sink).
    ModIn1(String),
    /// A module's second operand port (sink).
    ModIn2(String),
    /// A module's output port (source).
    ModOut(String),
    /// A module's operation-select port (sink; IKS extension).
    ModOp(String),
    /// A constant operation code (source for [`Endpoint::ModOp`]).
    ConstOp(Op),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::RegOut(r) => write!(f, "{r}_out"),
            Endpoint::RegIn(r) => write!(f, "{r}_in"),
            Endpoint::Bus(b) => write!(f, "{b}"),
            Endpoint::ModIn1(m) => write!(f, "{m}_in1"),
            Endpoint::ModIn2(m) => write!(f, "{m}_in2"),
            Endpoint::ModOut(m) => write!(f, "{m}_out"),
            Endpoint::ModOp(m) => write!(f, "{m}_op"),
            Endpoint::ConstOp(op) => write!(f, "const({op})"),
        }
    }
}

/// One transfer-process instance: the paper's `TRANS` generic-mapped to a
/// step and phase, port-mapped to a source and a sink.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TransferSpec {
    /// The control step at which the process is active.
    pub step: Step,
    /// The phase at which the process assigns the source to the sink.
    pub phase: Phase,
    /// The value source (read at `phase`).
    pub src: Endpoint,
    /// The value sink (assigned at `phase`, disconnected at the
    /// successor phase).
    pub dst: Endpoint,
}

impl TransferSpec {
    /// Instance name in the style the paper uses
    /// (e.g. `R1_out_B1_5`, `B1_ADD_in1_5`).
    pub fn instance_name(&self) -> String {
        format!("{}_{}_{}", self.src, self.dst, self.step)
    }
}

impl fmt::Display for TransferSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} @ step {} phase {}",
            self.src, self.dst, self.step, self.phase
        )
    }
}

/// Error parsing a [`TransferTuple`] from the paper's textual form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTupleError {
    msg: String,
}

impl ParseTupleError {
    fn new(msg: impl Into<String>) -> Self {
        ParseTupleError { msg: msg.into() }
    }
}

impl fmt::Display for ParseTupleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid transfer tuple: {}", self.msg)
    }
}

impl std::error::Error for ParseTupleError {}

impl fmt::Display for TransferTuple {
    /// Prints in the paper's 9-tuple notation, with `-` for absent
    /// elements and `MODULE:op` for the operation extension.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dash = "-".to_string();
        let (ra, ba) = self
            .src_a
            .as_ref()
            .map(|r| (r.register.clone(), r.bus.clone()))
            .unwrap_or((dash.clone(), dash.clone()));
        let (rb, bb) = self
            .src_b
            .as_ref()
            .map(|r| (r.register.clone(), r.bus.clone()))
            .unwrap_or((dash.clone(), dash.clone()));
        let module = match self.op {
            Some(op) => format!("{}:{}", self.module, op),
            None => self.module.clone(),
        };
        let (ws, wb, wr) = self
            .write
            .as_ref()
            .map(|w| (w.step.to_string(), w.bus.clone(), w.register.clone()))
            .unwrap_or((dash.clone(), dash.clone(), dash));
        write!(
            f,
            "({ra},{ba},{rb},{bb},{},{module},{ws},{wb},{wr})",
            self.read_step
        )
    }
}

impl FromStr for TransferTuple {
    type Err = ParseTupleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| ParseTupleError::new("missing parentheses"))?;
        let parts: Vec<&str> = body.split(',').map(str::trim).collect();
        if parts.len() != 9 {
            return Err(ParseTupleError::new(format!(
                "expected 9 elements, found {}",
                parts.len()
            )));
        }
        let opt = |s: &str| -> Option<String> {
            if s == "-" {
                None
            } else {
                Some(s.to_string())
            }
        };
        let src_a = match (opt(parts[0]), opt(parts[1])) {
            (Some(r), Some(b)) => Some(OperandRoute {
                register: r,
                bus: b,
            }),
            (None, None) => None,
            _ => {
                return Err(ParseTupleError::new(
                    "operand A must name both register and bus",
                ))
            }
        };
        let src_b = match (opt(parts[2]), opt(parts[3])) {
            (Some(r), Some(b)) => Some(OperandRoute {
                register: r,
                bus: b,
            }),
            (None, None) => None,
            _ => {
                return Err(ParseTupleError::new(
                    "operand B must name both register and bus",
                ))
            }
        };
        let read_step: Step = parts[4]
            .parse()
            .map_err(|_| ParseTupleError::new(format!("bad read step `{}`", parts[4])))?;
        let (module, op) = match parts[5].split_once(':') {
            Some((m, o)) => {
                let op = o
                    .parse::<Op>()
                    .map_err(|e| ParseTupleError::new(e.to_string()))?;
                (m.to_string(), Some(op))
            }
            None => (parts[5].to_string(), None),
        };
        if module.is_empty() || module == "-" {
            return Err(ParseTupleError::new("module name is required"));
        }
        let write = match (opt(parts[6]), opt(parts[7]), opt(parts[8])) {
            (Some(s), Some(b), Some(r)) => {
                let step: Step = s
                    .parse()
                    .map_err(|_| ParseTupleError::new(format!("bad write step `{s}`")))?;
                Some(WriteRoute {
                    step,
                    bus: b,
                    register: r,
                })
            }
            (None, None, None) => None,
            _ => {
                return Err(ParseTupleError::new(
                    "write-back must name step, bus and register together",
                ))
            }
        };
        Ok(TransferTuple {
            src_a,
            src_b,
            read_step,
            module,
            op,
            write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> TransferTuple {
        TransferTuple::new(5, "ADD")
            .src_a("R1", "B1")
            .src_b("R2", "B2")
            .write(6, "B1", "R1")
    }

    #[test]
    fn fig1_expansion_matches_paper_mapping() {
        // §2.7 derives exactly six TRANS instances from the Fig. 1 tuple.
        let specs = fig1().expand();
        assert_eq!(specs.len(), 6);
        assert_eq!(
            specs[0],
            TransferSpec {
                step: 5,
                phase: Phase::Ra,
                src: Endpoint::RegOut("R1".into()),
                dst: Endpoint::Bus("B1".into()),
            }
        );
        assert_eq!(specs[0].instance_name(), "R1_out_B1_5");
        assert_eq!(specs[1].instance_name(), "B1_ADD_in1_5");
        assert_eq!(specs[2].instance_name(), "R2_out_B2_5");
        assert_eq!(specs[3].instance_name(), "B2_ADD_in2_5");
        assert_eq!(specs[4].instance_name(), "ADD_out_B1_6");
        assert_eq!(specs[5].instance_name(), "B1_R1_in_6");
        // Phases follow Fig. 2.
        assert_eq!(specs[4].phase, Phase::Wa);
        assert_eq!(specs[5].phase, Phase::Wb);
    }

    #[test]
    fn tuple_display_parse_roundtrip() {
        let t = fig1();
        let s = t.to_string();
        assert_eq!(s, "(R1,B1,R2,B2,5,ADD,6,B1,R1)");
        assert_eq!(s.parse::<TransferTuple>().unwrap(), t);
    }

    #[test]
    fn partial_tuples_roundtrip() {
        // The paper's reconstruction examples use '-' for unknown parts.
        let t: TransferTuple = "(R1,B1,-,-,5,ADD,-,-,-)".parse().unwrap();
        assert!(t.src_b.is_none());
        assert!(t.write.is_none());
        assert_eq!(t.to_string(), "(R1,B1,-,-,5,ADD,-,-,-)");
    }

    #[test]
    fn op_extension_roundtrip() {
        let t: TransferTuple = "(Y,BusA,-,-,3,XADD:shr,4,BusB,X)".parse().unwrap();
        assert_eq!(t.op, Some(Op::Shr));
        assert_eq!(t.to_string(), "(Y,BusA,-,-,3,XADD:shr,4,BusB,X)");
        // Op expansion adds the operation-select process.
        let specs = t.expand();
        assert!(specs
            .iter()
            .any(|s| matches!(&s.dst, Endpoint::ModOp(m) if m == "XADD")));
    }

    #[test]
    fn unary_transfer_expands_to_four() {
        let t = TransferTuple::new(2, "COPY")
            .src_a("Z", "Z_R_link")
            .write(3, "Z_R_link2", "Rfile");
        assert_eq!(t.expand().len(), 4);
    }

    #[test]
    fn malformed_tuples_rejected() {
        assert!("(R1,B1)".parse::<TransferTuple>().is_err());
        assert!("R1,B1,R2,B2,5,ADD,6,B1,R1"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,-,R2,B2,5,ADD,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,x,ADD,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,5,-,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,5,ADD,6,-,R1)"
            .parse::<TransferTuple>()
            .is_err());
        assert!("(R1,B1,R2,B2,5,ADD:frob,6,B1,R1)"
            .parse::<TransferTuple>()
            .is_err());
    }
}
