//! Operation scheduling: ASAP, ALAP, mobility and resource-constrained
//! list scheduling.
//!
//! "The scheduling task is to determine the register transfers and to
//! properly embed them into the control step scheme observing the timing
//! of the functional units" (§2.1). The timing rules follow from the
//! clock-free model's semantics:
//!
//! * a node reading its operands at step `s` on a module with latency `L`
//!   commits its result at step `s + L` (`wa`/`wb`/`cr` phases);
//! * a committed value is readable from step `s + L + 1` (register outputs
//!   update after `cr`) — there is no operation chaining, every value
//!   passes through a register;
//! * a pipelined module accepts one initiation per step, a sequential one
//!   per `latency` steps.

use std::fmt;

use clockless_core::{ModuleTiming, Op, Step};

use crate::dfg::{Dfg, NodeId};

/// A class of interchangeable functional units.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceClass {
    /// Base name for instances (`ADD` → `ADD0`, `ADD1`, …).
    pub name: String,
    /// Operations every instance supports.
    pub ops: Vec<Op>,
    /// Timing of every instance.
    pub timing: ModuleTiming,
    /// Number of instances available.
    pub count: usize,
}

impl ResourceClass {
    /// A class of `count` single-operation units.
    pub fn new(
        name: impl Into<String>,
        ops: impl IntoIterator<Item = Op>,
        timing: ModuleTiming,
        count: usize,
    ) -> ResourceClass {
        ResourceClass {
            name: name.into(),
            ops: ops.into_iter().collect(),
            timing,
            count,
        }
    }
}

/// The set of resource classes a schedule may use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceSet {
    classes: Vec<ResourceClass>,
}

impl ResourceSet {
    /// Creates a resource set.
    pub fn new(classes: impl IntoIterator<Item = ResourceClass>) -> ResourceSet {
        ResourceSet {
            classes: classes.into_iter().collect(),
        }
    }

    /// The classes.
    pub fn classes(&self) -> &[ResourceClass] {
        &self.classes
    }

    /// Index of the first class supporting `op`.
    pub fn class_for(&self, op: Op) -> Option<usize> {
        self.classes.iter().position(|c| c.ops.contains(&op))
    }

    /// A set with one dedicated combinational/pipelined unit per distinct
    /// operation of `dfg`, unlimited in count — the "no resource
    /// constraints" baseline (ASAP-achievable).
    pub fn unconstrained(dfg: &Dfg) -> ResourceSet {
        let mut classes: Vec<ResourceClass> = Vec::new();
        for node in dfg.nodes() {
            if !classes.iter().any(|c| c.ops.contains(&node.op)) {
                classes.push(ResourceClass::new(
                    format!("U{}", node.op.mnemonic().to_uppercase()),
                    [node.op],
                    default_timing(node.op),
                    dfg.len().max(1),
                ));
            }
        }
        ResourceSet { classes }
    }
}

/// Conventional default timings: multipliers are pipelined two-stage
/// units, everything else is a single-step pipelined unit.
pub fn default_timing(op: Op) -> ModuleTiming {
    match op {
        Op::Mul | Op::MulFx(_) => ModuleTiming::Pipelined { latency: 2 },
        _ => ModuleTiming::Pipelined { latency: 1 },
    }
}

/// Errors from scheduling.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// No resource class supports the operation.
    NoResourceFor(Op),
    /// A resource class declares zero instances.
    EmptyClass(String),
    /// The ALAP deadline is shorter than the critical path.
    DeadlineTooTight {
        /// The requested deadline.
        deadline: Step,
        /// The critical-path length (minimum feasible deadline).
        critical_path: Step,
    },
    /// The bus budget cannot carry even a single operation's routes.
    BusBudgetTooSmall {
        /// The budget that was requested.
        budget: usize,
        /// The minimum needed by the widest operation.
        needed: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NoResourceFor(op) => {
                write!(f, "no resource class supports operation `{op}`")
            }
            ScheduleError::EmptyClass(name) => {
                write!(f, "resource class `{name}` has zero instances")
            }
            ScheduleError::DeadlineTooTight {
                deadline,
                critical_path,
            } => write!(
                f,
                "deadline {deadline} shorter than critical path {critical_path}"
            ),
            ScheduleError::BusBudgetTooSmall { budget, needed } => write!(
                f,
                "bus budget {budget} below the {needed} routes a single operation needs"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete schedule: read step and resource binding per node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Operand-read step per node.
    pub read_step: Vec<Step>,
    /// `(class index, instance index)` per node.
    pub binding: Vec<(usize, usize)>,
    /// Latency per node (from its class timing).
    pub latency: Vec<u32>,
    /// Total schedule length: the last commit step (`CS_MAX` of the
    /// emitted model).
    pub length: Step,
}

impl Schedule {
    /// The step at which a node's result is committed.
    pub fn commit_step(&self, n: NodeId) -> Step {
        self.read_step[n.index()] + self.latency[n.index()]
    }

    /// The first step at which a node's result can be read.
    pub fn available_step(&self, n: NodeId) -> Step {
        self.commit_step(n) + 1
    }
}

/// Latency of each node under a resource set.
///
/// # Errors
///
/// [`ScheduleError::NoResourceFor`] if some operation has no class.
fn latencies(dfg: &Dfg, resources: &ResourceSet) -> Result<Vec<u32>, ScheduleError> {
    dfg.nodes()
        .iter()
        .map(|n| {
            resources
                .class_for(n.op)
                .map(|c| resources.classes[c].timing.latency())
                .ok_or(ScheduleError::NoResourceFor(n.op))
        })
        .collect()
}

/// As-soon-as-possible read steps, ignoring resource counts.
///
/// # Errors
///
/// [`ScheduleError::NoResourceFor`] if some operation has no class.
pub fn asap(dfg: &Dfg, resources: &ResourceSet) -> Result<Vec<Step>, ScheduleError> {
    let lat = latencies(dfg, resources)?;
    let mut steps = vec![1 as Step; dfg.len()];
    for idx in 0..dfg.len() {
        let n = NodeId(idx as u32);
        let mut earliest = 1;
        for p in dfg.preds(n) {
            // Result readable one step after the producer's commit.
            earliest = earliest.max(steps[p.index()] + lat[p.index()] + 1);
        }
        steps[idx] = earliest;
    }
    Ok(steps)
}

/// Critical-path length: the minimum feasible schedule length (last
/// commit step of an ASAP schedule).
///
/// # Errors
///
/// [`ScheduleError::NoResourceFor`] if some operation has no class.
pub fn critical_path(dfg: &Dfg, resources: &ResourceSet) -> Result<Step, ScheduleError> {
    let lat = latencies(dfg, resources)?;
    let steps = asap(dfg, resources)?;
    Ok(steps
        .iter()
        .zip(&lat)
        .map(|(s, l)| s + l)
        .max()
        .unwrap_or(0))
}

/// As-late-as-possible read steps for a given deadline (all commits by
/// `deadline`).
///
/// # Errors
///
/// [`ScheduleError::DeadlineTooTight`] when the deadline is below the
/// critical path, or [`ScheduleError::NoResourceFor`].
pub fn alap(
    dfg: &Dfg,
    resources: &ResourceSet,
    deadline: Step,
) -> Result<Vec<Step>, ScheduleError> {
    let lat = latencies(dfg, resources)?;
    let cp = critical_path(dfg, resources)?;
    if deadline < cp {
        return Err(ScheduleError::DeadlineTooTight {
            deadline,
            critical_path: cp,
        });
    }
    let mut steps = vec![0 as Step; dfg.len()];
    for idx in (0..dfg.len()).rev() {
        let n = NodeId(idx as u32);
        let succs = dfg.succs(n);
        let mut latest = deadline - lat[idx];
        for s in succs {
            // The consumer reads at steps[s]; our commit must be strictly
            // before that read.
            latest = latest.min(steps[s.index()] - lat[idx] - 1);
        }
        steps[idx] = latest;
    }
    Ok(steps)
}

/// Mobility (ALAP − ASAP) per node, for a given deadline.
///
/// # Errors
///
/// Propagates [`asap`]/[`alap`] errors.
pub fn mobility(
    dfg: &Dfg,
    resources: &ResourceSet,
    deadline: Step,
) -> Result<Vec<Step>, ScheduleError> {
    let a = asap(dfg, resources)?;
    let l = alap(dfg, resources, deadline)?;
    Ok(a.iter().zip(&l).map(|(a, l)| l - a).collect())
}

/// Resource-constrained list scheduling with mobility priority.
///
/// At each step the ready operations (all producers committed in earlier
/// steps) are considered in order of increasing mobility; each is placed
/// on a free instance of its class if one exists, otherwise deferred.
/// Instances respect their initiation interval (1 for combinational and
/// pipelined units, `latency` for sequential ones).
///
/// # Errors
///
/// [`ScheduleError::NoResourceFor`] or [`ScheduleError::EmptyClass`].
pub fn list_schedule(dfg: &Dfg, resources: &ResourceSet) -> Result<Schedule, ScheduleError> {
    list_schedule_impl(dfg, resources, None)
}

/// Resource-constrained list scheduling with an additional **bus budget**:
/// buses are resources too (§2.1), so at most `buses` operand routes may
/// be read and at most `buses` results written back in any one step (the
/// two uses occupy different phases of the step and are budgeted
/// independently, exactly as the allocator packs them).
///
/// # Errors
///
/// [`ScheduleError::BusBudgetTooSmall`] when a single binary operation
/// cannot fit, plus the [`list_schedule`] errors.
pub fn list_schedule_with_buses(
    dfg: &Dfg,
    resources: &ResourceSet,
    buses: usize,
) -> Result<Schedule, ScheduleError> {
    let needed = dfg
        .nodes()
        .iter()
        .map(|n| n.operands().len())
        .max()
        .unwrap_or(0);
    if buses < needed.max(1) {
        return Err(ScheduleError::BusBudgetTooSmall {
            budget: buses,
            needed: needed.max(1),
        });
    }
    list_schedule_impl(dfg, resources, Some(buses))
}

fn list_schedule_impl(
    dfg: &Dfg,
    resources: &ResourceSet,
    bus_budget: Option<usize>,
) -> Result<Schedule, ScheduleError> {
    for c in resources.classes() {
        if c.count == 0 {
            return Err(ScheduleError::EmptyClass(c.name.clone()));
        }
    }
    let lat = latencies(dfg, resources)?;
    let asap_steps = asap(dfg, resources)?;
    // Generous deadline for mobility: critical path plus node count.
    let deadline = critical_path(dfg, resources)? + dfg.len() as Step;
    let alap_steps = alap(dfg, resources, deadline)?;

    let n = dfg.len();
    let mut read_step = vec![0 as Step; n];
    let mut binding = vec![(0usize, 0usize); n];
    let mut scheduled = vec![false; n];
    // Per (class, instance): next step at which it can initiate.
    let mut next_free: Vec<Vec<Step>> = resources
        .classes()
        .iter()
        .map(|c| vec![1; c.count])
        .collect();

    // Bus-route occupancy per step (operand reads / result writes).
    let mut reads_used: std::collections::HashMap<Step, usize> = std::collections::HashMap::new();
    let mut writes_used: std::collections::HashMap<Step, usize> = std::collections::HashMap::new();

    let mut remaining = n;
    let mut t: Step = 1;
    while remaining > 0 {
        // Ready: unscheduled, every producer committed strictly before t.
        let mut ready: Vec<NodeId> = (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|&id| {
                !scheduled[id.index()]
                    && asap_steps[id.index()] <= t
                    && dfg
                        .preds(id)
                        .iter()
                        .all(|p| scheduled[p.index()] && read_step[p.index()] + lat[p.index()] < t)
            })
            .collect();
        ready.sort_by_key(|id| (alap_steps[id.index()] - asap_steps[id.index()], id.index()));
        for id in ready {
            let class = resources
                .class_for(dfg.nodes()[id.index()].op)
                .expect("latencies() validated all ops");
            let ii = resources.classes()[class].timing.initiation_interval() as Step;
            if let Some(inst) = next_free[class].iter().position(|&f| f <= t) {
                if let Some(budget) = bus_budget {
                    let routes = dfg.nodes()[id.index()].operands().len();
                    let commit = t + lat[id.index()];
                    let reads = reads_used.get(&t).copied().unwrap_or(0);
                    let writes = writes_used.get(&commit).copied().unwrap_or(0);
                    if reads + routes > budget || writes + 1 > budget {
                        continue; // no bus capacity this step; defer
                    }
                    *reads_used.entry(t).or_insert(0) += routes;
                    *writes_used.entry(commit).or_insert(0) += 1;
                }
                read_step[id.index()] = t;
                binding[id.index()] = (class, inst);
                scheduled[id.index()] = true;
                next_free[class][inst] = t + ii;
                remaining -= 1;
            }
        }
        t += 1;
        debug_assert!(t < 10 * deadline + 10, "list scheduling failed to converge");
    }

    let length = (0..n).map(|i| read_step[i] + lat[i]).max().unwrap_or(0);
    Ok(Schedule {
        read_step,
        binding,
        latency: lat,
        length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::Op;

    /// out = (a+b) * (c-d); adds latency 1, mul latency 2.
    fn diamond() -> Dfg {
        let mut g = Dfg::new("diamond");
        let s = g.node(Op::Add, "a", "b").unwrap();
        let d = g.node(Op::Sub, "c", "d").unwrap();
        let m = g.node(Op::Mul, s, d).unwrap();
        g.output("out", m).unwrap();
        g
    }

    fn alu_resources(adders: usize, muls: usize) -> ResourceSet {
        ResourceSet::new([
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                adders,
            ),
            ResourceClass::new(
                "MUL",
                [Op::Mul],
                ModuleTiming::Pipelined { latency: 2 },
                muls,
            ),
        ])
    }

    #[test]
    fn asap_respects_register_passing() {
        let g = diamond();
        let r = alu_resources(2, 1);
        let steps = asap(&g, &r).unwrap();
        // add/sub read at 1, commit at 2; mul reads at 3 (not 2!).
        assert_eq!(steps, vec![1, 1, 3]);
        assert_eq!(critical_path(&g, &r).unwrap(), 5);
    }

    #[test]
    fn alap_pushes_late() {
        let g = diamond();
        let r = alu_resources(2, 1);
        let steps = alap(&g, &r, 7).unwrap();
        // mul commits at 7 -> reads at 5; producers commit by 4 -> read at 3.
        assert_eq!(steps, vec![3, 3, 5]);
        let m = mobility(&g, &r, 7).unwrap();
        assert_eq!(m, vec![2, 2, 2]);
    }

    #[test]
    fn alap_rejects_tight_deadline() {
        let g = diamond();
        let r = alu_resources(2, 1);
        assert!(matches!(
            alap(&g, &r, 4),
            Err(ScheduleError::DeadlineTooTight {
                critical_path: 5,
                ..
            })
        ));
    }

    #[test]
    fn list_schedule_with_one_alu_serializes() {
        let g = diamond();
        let sched = list_schedule(&g, &alu_resources(1, 1)).unwrap();
        // add and sub compete for the single ALU: steps 1 and 2.
        let (s_add, s_sub) = (sched.read_step[0], sched.read_step[1]);
        assert_eq!([s_add, s_sub].iter().min(), Some(&1));
        assert_eq!([s_add, s_sub].iter().max(), Some(&2));
        // mul waits for the later producer: commit 3 -> read 4, commit 6.
        assert_eq!(sched.read_step[2], 4);
        assert_eq!(sched.length, 6);
        // Bindings use distinct steps on the same instance.
        assert_eq!(sched.binding[0].0, sched.binding[1].0);
        assert_eq!(sched.binding[0].1, sched.binding[1].1);
    }

    #[test]
    fn list_schedule_with_two_alus_parallelizes() {
        let g = diamond();
        let sched = list_schedule(&g, &alu_resources(2, 1)).unwrap();
        assert_eq!(sched.read_step[0], 1);
        assert_eq!(sched.read_step[1], 1);
        assert_ne!(sched.binding[0].1, sched.binding[1].1);
        assert_eq!(sched.length, 5);
    }

    #[test]
    fn sequential_units_respect_initiation_interval() {
        // Two independent multiplies on one sequential 2-step multiplier.
        let mut g = Dfg::new("seq");
        let m1 = g.node(Op::Mul, "a", "b").unwrap();
        let m2 = g.node(Op::Mul, "c", "d").unwrap();
        g.output("x", m1).unwrap();
        g.output("y", m2).unwrap();
        let r = ResourceSet::new([ResourceClass::new(
            "MUL",
            [Op::Mul],
            ModuleTiming::Sequential { latency: 2 },
            1,
        )]);
        let sched = list_schedule(&g, &r).unwrap();
        let mut steps = vec![sched.read_step[0], sched.read_step[1]];
        steps.sort();
        assert_eq!(steps, vec![1, 3]); // II = 2
    }

    #[test]
    fn missing_resource_reported() {
        let g = diamond();
        let r = ResourceSet::new([ResourceClass::new(
            "ALU",
            [Op::Add, Op::Sub],
            ModuleTiming::Pipelined { latency: 1 },
            1,
        )]);
        assert_eq!(
            list_schedule(&g, &r),
            Err(ScheduleError::NoResourceFor(Op::Mul))
        );
    }

    #[test]
    fn unconstrained_matches_asap() {
        let g = diamond();
        let r = ResourceSet::unconstrained(&g);
        let sched = list_schedule(&g, &r).unwrap();
        assert_eq!(sched.read_step, asap(&g, &r).unwrap());
    }
}

#[cfg(test)]
mod bus_budget_tests {
    use super::*;
    use clockless_core::Op;

    /// Four independent adds: unconstrained they all go in step 1.
    fn wide() -> Dfg {
        let mut g = Dfg::new("wide");
        let mut outs = Vec::new();
        for i in 0..4 {
            let a = format!("a{i}");
            let b = format!("b{i}");
            outs.push(g.node(Op::Add, a.as_str(), b.as_str()).unwrap());
        }
        for (i, n) in outs.into_iter().enumerate() {
            g.output(format!("o{i}"), n).unwrap();
        }
        g
    }

    fn adders(n: usize) -> ResourceSet {
        ResourceSet::new([ResourceClass::new(
            "ADD",
            [Op::Add],
            ModuleTiming::Pipelined { latency: 1 },
            n,
        )])
    }

    #[test]
    fn bus_budget_serializes_parallel_reads() {
        let g = wide();
        // Plenty of adders, but only 4 buses: two adds per step
        // (2 operand routes each).
        let sched = list_schedule_with_buses(&g, &adders(4), 4).unwrap();
        let mut steps: Vec<Step> = sched.read_step.clone();
        steps.sort();
        assert_eq!(steps, vec![1, 1, 2, 2]);

        // With 8 buses everything fits in step 1.
        let sched = list_schedule_with_buses(&g, &adders(4), 8).unwrap();
        assert_eq!(sched.read_step, vec![1, 1, 1, 1]);
    }

    #[test]
    fn result_routes_also_budgeted() {
        // Two adds (4 operand routes, 2 results) under budget 4: operand
        // routes fit in one step, and so do the 2 results — but budget 2
        // allows only one add per step (2 operand routes each).
        let g = wide();
        let sched = list_schedule_with_buses(&g, &adders(4), 2).unwrap();
        let mut steps: Vec<Step> = sched.read_step.clone();
        steps.sort();
        assert_eq!(steps, vec![1, 2, 3, 4]);
    }

    #[test]
    fn too_small_budget_rejected() {
        let g = wide();
        assert_eq!(
            list_schedule_with_buses(&g, &adders(4), 1),
            Err(ScheduleError::BusBudgetTooSmall {
                budget: 1,
                needed: 2
            })
        );
    }

    #[test]
    fn allocation_respects_the_budget() {
        let g = wide();
        for budget in [2usize, 4, 8] {
            let sched = list_schedule_with_buses(&g, &adders(4), budget).unwrap();
            let alloc = crate::alloc::allocate(&g, &sched);
            assert!(
                alloc.bus_count <= budget,
                "budget {budget}, allocated {}",
                alloc.bus_count
            );
        }
    }

    #[test]
    fn budgeted_flow_still_verifies() {
        use std::collections::HashMap;
        let g = wide();
        let names: Vec<String> = (0..4)
            .flat_map(|i| [format!("a{i}"), format!("b{i}")])
            .collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 * 5 - 7))
            .collect();
        let sched = list_schedule_with_buses(&g, &adders(2), 2).unwrap();
        let alloc = crate::alloc::allocate(&g, &sched);
        let syn = crate::emit::emit(&g, &sched, &alloc, &adders(2), &inputs).unwrap();
        let mut sim = clockless_core::RtSimulation::new(&syn.model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        let reference = g.evaluate(&inputs).unwrap();
        for (name, reg) in &syn.output_registers {
            assert_eq!(
                summary.register(reg),
                Some(clockless_core::Value::Num(reference[name])),
            );
        }
    }
}
