//! Static resource-conflict analysis, cross-checked against the dynamic
//! `ILLEGAL` detector.
//!
//! The paper's models detect conflicts **dynamically**: colliding drives
//! resolve to `ILLEGAL` "in specific simulation cycles associated with a
//! specific phase of a specific control step" (§2.7). A scheduler can also
//! find most of them **statically** by inspecting the tuples. This module
//! provides the static analysis and a cross-check harness proving the two
//! detectors agree: every statically predicted collision shows up as a
//! dynamic `ILLEGAL` at the predicted step, and a clean static report
//! implies a clean traced run (for models without data-dependent operand
//! illegality, which only the dynamic check can see).

use std::collections::HashMap;
use std::fmt;

use clockless_core::{ConflictSite, Phase, PhaseTime, RtModel, RtSimulation, Step};
use clockless_kernel::KernelError;

/// A statically predicted resource conflict.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PredictedConflict {
    /// What kind of object collides.
    pub site: ConflictSite,
    /// The object's name.
    pub name: String,
    /// The step in which the colliding drives happen.
    pub step: Step,
    /// The phase in which the colliding drives happen; the `ILLEGAL`
    /// value becomes *visible* one phase later.
    pub drive_phase: Phase,
}

impl PredictedConflict {
    /// Where the dynamic detector will report this conflict: drives at
    /// phase `p` resolve visibly at `p`'s successor.
    pub fn visible_at(&self) -> PhaseTime {
        PhaseTime::new(self.step, self.drive_phase).next()
    }
}

impl fmt::Display for PredictedConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} `{}` driven twice at step {} phase {}",
            self.site, self.name, self.step, self.drive_phase
        )
    }
}

/// Statically analyses a model's tuples for resource conflicts: two
/// drives of one bus in the same phase of the same step, two drives of a
/// module operand/op port, or two write-backs into one register.
pub fn static_conflicts(model: &RtModel) -> Vec<PredictedConflict> {
    use clockless_core::Endpoint;

    // Key: (object name, distinguishing port tag, step, phase).
    let mut drives: HashMap<(String, &'static str, Step, Phase), (ConflictSite, usize)> =
        HashMap::new();

    for t in model.tuples() {
        for spec in t.expand() {
            let (name, tag, site) = match &spec.dst {
                Endpoint::Bus(b) => (b.clone(), "", ConflictSite::Bus),
                Endpoint::ModIn1(m) => (m.clone(), "in1", ConflictSite::ModulePort),
                Endpoint::ModIn2(m) => (m.clone(), "in2", ConflictSite::ModulePort),
                Endpoint::ModOp(m) => (m.clone(), "op", ConflictSite::ModuleOpPort),
                Endpoint::RegIn(r) => (r.clone(), "", ConflictSite::RegisterPort),
                _ => continue,
            };
            let e = drives
                .entry((name, tag, spec.step, spec.phase))
                .or_insert((site, 0));
            e.1 += 1;
        }
    }

    let mut out: Vec<PredictedConflict> = drives
        .into_iter()
        .filter(|(_, (_, count))| *count > 1)
        .map(
            |((name, _, step, drive_phase), (site, _))| PredictedConflict {
                site,
                name,
                step,
                drive_phase,
            },
        )
        .collect();
    out.sort_by_key(|c| (c.step, c.drive_phase, c.name.clone()));
    out
}

/// Result of cross-checking the static and dynamic detectors.
#[derive(Debug, Clone, Default)]
pub struct CrossCheck {
    /// Statically predicted conflicts.
    pub predicted: Vec<PredictedConflict>,
    /// Predictions confirmed by a dynamic `ILLEGAL` at the predicted
    /// place.
    pub confirmed: Vec<PredictedConflict>,
    /// Predictions the dynamic run did not confirm (should be empty).
    pub unconfirmed: Vec<PredictedConflict>,
    /// Dynamic conflicts with no static prediction — data-dependent
    /// illegality or downstream propagation of a confirmed conflict.
    pub dynamic_only: Vec<clockless_core::Conflict>,
}

impl CrossCheck {
    /// `true` when every static prediction was dynamically confirmed.
    pub fn all_confirmed(&self) -> bool {
        self.unconfirmed.is_empty()
    }
}

/// Runs the traced simulation and compares observed `ILLEGAL`s with the
/// static predictions.
///
/// # Errors
///
/// Propagates kernel errors from the traced run.
pub fn cross_check(model: &RtModel) -> Result<CrossCheck, KernelError> {
    let predicted = static_conflicts(model);
    let mut sim = RtSimulation::traced(model)?;
    sim.run_to_completion()?;
    let observed = sim.conflicts().expect("traced run records conflicts");

    let mut confirmed = Vec::new();
    let mut unconfirmed = Vec::new();
    for p in &predicted {
        let hit = observed
            .conflicts
            .iter()
            .any(|c| c.name == p.name && c.visible_at == p.visible_at());
        if hit {
            confirmed.push(p.clone());
        } else {
            unconfirmed.push(p.clone());
        }
    }
    let dynamic_only = observed
        .conflicts
        .iter()
        .filter(|c| {
            !predicted
                .iter()
                .any(|p| p.name == c.name && p.visible_at() == c.visible_at)
        })
        .cloned()
        .collect();
    Ok(CrossCheck {
        predicted,
        confirmed,
        unconfirmed,
        dynamic_only,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;

    fn conflicted_model() -> RtModel {
        let mut m = RtModel::new("conflict", 6);
        m.add_register_init("R1", Value::Num(1)).unwrap();
        m.add_register_init("R2", Value::Num(2)).unwrap();
        m.add_register("R3").unwrap();
        m.add_bus("B1").unwrap();
        m.add_bus("B2").unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "CP",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(3, "ADD")
                .src_a("R1", "B1")
                .src_b("R2", "B2")
                .write(4, "B2", "R3"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(3, "CP")
                .src_a("R2", "B1")
                .write(3, "B2", "R3"),
        )
        .unwrap();
        m
    }

    #[test]
    fn clean_model_predicts_nothing() {
        assert!(static_conflicts(&fig1_model(1, 2)).is_empty());
    }

    #[test]
    fn bus_collision_predicted() {
        let cs = static_conflicts(&conflicted_model());
        assert!(cs
            .iter()
            .any(|c| c.site == ConflictSite::Bus && c.name == "B1" && c.step == 3));
        // Prediction agrees with the dynamic localization rule.
        let b1 = cs.iter().find(|c| c.name == "B1").unwrap();
        assert_eq!(b1.visible_at(), PhaseTime::new(3, Phase::Rb));
    }

    #[test]
    fn cross_check_confirms_predictions() {
        let cc = cross_check(&conflicted_model()).unwrap();
        assert!(!cc.predicted.is_empty());
        assert!(cc.all_confirmed(), "unconfirmed: {:?}", cc.unconfirmed);
        // Dynamic sees more: the ILLEGAL propagates into the ADD port,
        // its output and the destination register.
        assert!(!cc.dynamic_only.is_empty());
    }

    #[test]
    fn cross_check_clean_on_clean_model() {
        let cc = cross_check(&fig1_model(5, 6)).unwrap();
        assert!(cc.predicted.is_empty());
        assert!(cc.dynamic_only.is_empty());
    }

    #[test]
    fn register_double_write_predicted() {
        let mut m = RtModel::new("wconflict", 4);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register_init("B", Value::Num(2)).unwrap();
        m.add_register("C").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_module(ModuleDecl::single(
            "CP1",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "CP2",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP1")
                .src_a("A", "X")
                .write(2, "X", "C"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP2")
                .src_a("B", "Y")
                .write(2, "Y", "C"),
        )
        .unwrap();
        let cs = static_conflicts(&m);
        assert!(cs
            .iter()
            .any(|c| c.site == ConflictSite::RegisterPort && c.name == "C"));
        let cc = cross_check(&m).unwrap();
        assert!(cc.all_confirmed());
    }
}
