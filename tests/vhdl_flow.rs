//! The source-level flow: the paper's VHDL subset as a first-class
//! input and output format, across the whole model zoo.

use clockless::clocked::{emit_clocked_vhdl, ClockScheme, ClockedDesign};
use clockless::core::text::parse_model;
use clockless::core::vhdl::{emit_components, emit_package, emit_vhdl};
use clockless::core::{RtSimulation, TransferTuple, Value};
use clockless::verify::model_from_vhdl;
use std::path::Path;

fn repo_path(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

fn load_rtl(rel: &str) -> clockless::core::RtModel {
    let text = std::fs::read_to_string(repo_path(rel)).expect("readable");
    parse_model(&text).expect("parses")
}

fn assert_vhdl_roundtrip(model: &clockless::core::RtModel) {
    let vhdl = emit_vhdl(model).expect("emits");
    let back = model_from_vhdl(&vhdl).expect("imports");
    assert_eq!(back.registers(), model.registers());
    assert_eq!(back.buses(), model.buses());
    assert_eq!(back.modules(), model.modules());
    let mut a = back.tuples().to_vec();
    let mut b = model.tuples().to_vec();
    let key = |t: &TransferTuple| (t.module.clone(), t.read_step);
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a, b);
}

#[test]
fn corpus_rtl_models_roundtrip_through_vhdl() {
    for rel in [
        "models/fig1.rtl",
        "models/accumulate.rtl",
        "models/multiop.rtl",
        // The conflicted model cannot round-trip (ambiguous
        // reconstruction is the *point* of the conflict); skipped.
    ] {
        let model = load_rtl(rel);
        assert_vhdl_roundtrip(&model);
    }
}

#[test]
fn fir_macc_chip_roundtrips_through_vhdl() {
    // The MACC FIR program uses only VHDL-expressible operations, so the
    // full chip round-trips at the source level (the IK chip, with its
    // CORDIC ops, is rejected — tested below).
    let model = load_rtl("models/iks_fir.rtl");
    assert_vhdl_roundtrip(&model);

    // And the reimported chip still computes the dot product.
    let vhdl = emit_vhdl(&model).unwrap();
    let back = model_from_vhdl(&vhdl).unwrap();
    let mut sim = RtSimulation::new(&back).unwrap();
    let summary = sim.run_to_completion().unwrap();
    use clockless::iks::fixed::{mul_fx, to_fx};
    let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
    let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
    let golden: i64 = samples
        .iter()
        .zip(&coeffs)
        .map(|(&x, &c)| mul_fx(x, c))
        .sum();
    assert_eq!(summary.register("Z"), Some(Value::Num(golden)));
}

#[test]
fn ik_chip_vhdl_emission_rejects_dsp_ops() {
    let model = load_rtl("models/iks_ik.rtl");
    let err = emit_vhdl(&model).unwrap_err();
    assert!(
        matches!(err, clockless::core::EmitVhdlError::UnsupportedOp(_)),
        "{err}"
    );
}

#[test]
fn support_package_is_emitted_once_per_design() {
    let model = load_rtl("models/fig1.rtl");
    let vhdl = emit_vhdl(&model).unwrap();
    assert_eq!(vhdl.matches("package rt_pkg is").count(), 1);
    assert_eq!(vhdl.matches("entity CONTROLLER is").count(), 1);
    // Static fragments are verbatim the standalone emitters' output.
    assert!(vhdl.contains(&emit_package()));
    assert!(vhdl.contains(&emit_components()));
}

#[test]
fn clocked_vhdl_contains_every_register_and_step() {
    let model = load_rtl("models/accumulate.rtl");
    let design = ClockedDesign::translate(&model, ClockScheme::default()).unwrap();
    let vhdl = emit_clocked_vhdl(&design).unwrap();
    for r in model.registers() {
        assert!(
            vhdl.contains(&format!("{}_q : out Integer", r.name)),
            "missing port for {}",
            r.name
        );
        assert!(vhdl.contains(&format!("{}_r", r.name)));
    }
    // Every load step appears in the register case statement.
    for t in model.tuples() {
        let w = t.write.as_ref().expect("accumulate writes every tuple");
        assert!(
            vhdl.contains(&format!("when {} =>", w.step)),
            "missing case arm for step {}",
            w.step
        );
    }
}

#[test]
fn vhdl_import_rejects_garbage() {
    assert!(model_from_vhdl("this is not VHDL at all").is_err());
    assert!(model_from_vhdl("").is_err());
}

#[test]
fn reimported_models_keep_delta_timing() {
    // The timing law survives the source round trip: 6 deltas per step.
    let model = load_rtl("models/multiop.rtl");
    let vhdl = emit_vhdl(&model).unwrap();
    let back = model_from_vhdl(&vhdl).unwrap();
    let mut sim = RtSimulation::new(&back).unwrap();
    let summary = sim.run_to_completion().unwrap();
    // multiop writes in its last step -> one trailing commit delta.
    assert_eq!(
        summary.stats.delta_cycles,
        1 + 6 * back.cs_max() as u64,
        "stats: {}",
        summary.stats
    );
}
