//! The succeeding synthesis step: control steps → clock signals (§4).
//!
//! "There are several ways to translate a control step scheme into a
//! clock scheme based on clock signals. The transformation … can be
//! performed automatically." This example takes an HLS-produced
//! clock-free model, translates it into two clocked architectures,
//! simulates all three, proves step-for-cycle commit-trace equivalence,
//! and contrasts the cost profile with the asynchronous-handshake style.
//!
//! Run with: `cargo run --example clocked_handoff`

use std::collections::HashMap;

use clockless::clocked::{
    check_clocked_equivalence, check_handshake_equivalence, ClockScheme, ClockedDesign,
    ClockedSimulation, HandshakeSim,
};
use clockless::core::prelude::*;
use clockless::hls::prelude::*;
use clockless::kernel::NS;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A clock-free model from the HLS front end: 8-tap FIR filter.
    let g = fir(&[3, -1, 4, 1, -5, 9, 2, 6]);
    let input_names: Vec<String> = (0..8).map(|i| format!("x{i}")).collect();
    let inputs: HashMap<&str, i64> = input_names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), 10 + i as i64)) // x_i = 10 + i
        .collect();
    let resources = ResourceSet::new([
        ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 2),
        ResourceClass::new("ADD", [Op::Add], ModuleTiming::Pipelined { latency: 1 }, 1),
    ]);
    let syn = synthesize(&g, &resources, &inputs)?;
    let model = &syn.model;
    println!(
        "clock-free model: {} steps, {} transfers, {} registers, {} buses",
        model.cs_max(),
        model.tuples().len(),
        model.registers().len(),
        model.buses().len()
    );

    // Abstract (clock-free) simulation.
    let mut abstract_sim = RtSimulation::new(model)?;
    let abstract_summary = abstract_sim.run_to_completion()?;
    let out_reg = &syn.output_registers["y"];
    println!(
        "abstract result: {out_reg} = {:?}  ({})",
        abstract_summary.register(out_reg).expect("output register"),
        abstract_summary.stats
    );

    // Automatic translation to both clocked architectures.
    println!("\nclocked translations:");
    for (label, scheme) in [
        (
            "one cycle per step ",
            ClockScheme::OneCyclePerStep { period_fs: 10 * NS },
        ),
        (
            "two cycles per step",
            ClockScheme::TwoCyclesPerStep { period_fs: 10 * NS },
        ),
    ] {
        let design = ClockedDesign::translate(model, scheme)?;
        let mut clocked = ClockedSimulation::new(&design, false)?;
        let stats = clocked.run_to_completion()?;
        println!(
            "  {label}: {} control signals, {} cycles, {} ns simulated, result {:?}  ({stats})",
            design.tables().control_signal_count(),
            design.total_cycles(),
            clocked.elapsed_fs() / NS,
            clocked.register_value(out_reg).expect("register exists"),
        );
        // Full commit-trace equivalence proof.
        let report = check_clocked_equivalence(model, scheme)?;
        assert!(report.equivalent(), "{report}");
    }
    println!("  commit traces equivalent under both schemes.");

    // The handshake style the paper contrasts with.
    let mut hs = HandshakeSim::new(model)?;
    let hs_stats = hs.run_to_completion()?;
    println!(
        "\nhandshake style: result {:?}  ({hs_stats})",
        hs.register_value(out_reg).expect("register exists"),
    );
    let report = check_handshake_equivalence(model)?;
    assert!(report.equivalent(), "{report}");
    println!(
        "same function, but {} delta cycles vs {} for the clock-free model — the \
         synchronization the control-step scheme gets for free.",
        hs_stats.delta_cycles, abstract_summary.stats.delta_cycles
    );
    println!("\nOK: one abstract model, three consistent implementations.");
    Ok(())
}
