//! Deterministic fault-injection campaigns over RT models.
//!
//! The paper's central verification claim is that the clock-free subset
//! makes resource conflicts *observable*: simultaneous drives resolve to
//! `ILLEGAL` at a precise step and phase instead of silently racing. A
//! fault campaign probes how far that detector actually reaches. A
//! seeded, fully deterministic generator derives a set of model mutants
//! — stuck-at-`DISC` registers, spurious second drivers, dropped
//! transfer tuples, step-skewed write-backs, corrupted init values —
//! interleaved round-robin across the classes so a `--max` cap samples
//! every class instead of a prefix of one.
//!
//! Two engines run the mutants, selected by [`CampaignEngine`]:
//!
//! * **Batched** (the default) — the golden model is lowered to one
//!   [`ExecPlan`], each fault becomes a small [`PlanDelta`]
//!   (init-vector or schedule edit; no model clone, no re-elaboration),
//!   and all mutants execute in lockstep over a structure-of-arrays
//!   register file via [`ExecPlan::execute_batch`].
//! * **Legacy** — every mutant model runs on a **private kernel
//!   instance** via the fault-tolerant `clockless-fleet` engine. This is
//!   the differential oracle: both engines produce byte-identical
//!   campaign reports, and the equivalence is pinned by tests and CI.
//!
//! Each run is classified against the golden (unmutated) run:
//!
//! * [`FaultOutcome::DetectedConflict`] — the mutant produced an
//!   `ILLEGAL`, localized to a site, step and phase. The detector works.
//! * [`FaultOutcome::DeltaOverflow`] — the mutant blew the delta budget
//!   (oscillation); caught by the budget, not the resolver.
//! * [`FaultOutcome::SilentCorruption`] — the run was clean but the
//!   final registers differ from the golden run: the fault **escaped**
//!   the conflict detector. These are the interesting rows — they mark
//!   the boundary of the paper's observability claim (a dropped transfer
//!   produces no second driver, so nothing conflicts; the state is just
//!   wrong).
//! * [`FaultOutcome::Masked`] — the run was clean *and* state-identical:
//!   the fault had no observable effect at all.
//! * [`FaultOutcome::Inapplicable`] — the fault does not fit the model
//!   (unknown register, out-of-range skew…). The row is quarantined,
//!   like the fleet quarantines failing jobs, instead of aborting the
//!   whole campaign; generation only emits applicable faults, so this
//!   appears only for caller-supplied fault lists
//!   ([`run_campaign_with_faults`]).
//!
//! The campaign report aggregates per-class detection coverage. On the
//! paper's Fig. 1 model, the `stuck` and `drivers` classes are detected
//! 100% (mixed `DISC`/value operands and double drives both resolve to
//! `ILLEGAL`), while `drops`, `skews` and `inits` legitimately escape —
//! the report says so instead of pretending otherwise.
//!
//! [`CampaignConfig::checkers`] closes that gap: golden-run value
//! monitors and mined functional invariants (see [`crate::monitor`] and
//! [`crate::invariants`]) run alongside every mutant, turning the
//! silent escapes into [`FaultOutcome::DetectedValue`] /
//! [`FaultOutcome::DetectedInvariant`] rows with the same exact
//! first-violation `(step, phase, signal)` localization conflicts get.
//! The report keeps both numbers — `detected` and `baseline` — so the
//! before/after coverage of the checkers is visible per class.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use clockless_core::{
    Backend, CheckProgram, CheckReport, ExecOptions, ExecPlan, InvariantViolation, ModuleDecl,
    ModuleTiming, MonitorViolation, Op, OptLevel, Phase, PlanDelta, RtModel, Step, TransferTuple,
    Value,
};
use clockless_fleet::{
    run_batch_with, BatchSpec, FailureKind, FleetConfig, FleetError, JobSource, JobSpec,
};
use clockless_kernel::SimStats;

use crate::monitor::{build_checkers, CheckerMode};

/// The five fault classes a campaign can inject, used both to group
/// coverage numbers and to filter generation (`--classes` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Registers forced to start at `DISC` ([`FaultKind::StuckAtDisc`]).
    Stuck,
    /// Spurious second bus drivers ([`FaultKind::ExtraDriver`]).
    Drivers,
    /// Dropped transfer tuples ([`FaultKind::DropTransfer`]).
    Drops,
    /// Step-skewed write-backs ([`FaultKind::SkewWrite`]).
    Skews,
    /// Corrupted register init values ([`FaultKind::CorruptInit`]).
    Inits,
    /// Flipped or forced transfer guards ([`FaultKind::FlipGuard`],
    /// [`FaultKind::ForceGuard`]) — control-condition faults that never
    /// add a driver, so the resolution function alone rarely sees them.
    Guards,
}

/// Every class, in canonical (reporting) order.
pub const ALL_CLASSES: [FaultClass; 6] = [
    FaultClass::Stuck,
    FaultClass::Drivers,
    FaultClass::Drops,
    FaultClass::Skews,
    FaultClass::Inits,
    FaultClass::Guards,
];

impl FaultClass {
    /// Stable machine-readable name (JSON and `--classes` grammar).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Stuck => "stuck",
            FaultClass::Drivers => "drivers",
            FaultClass::Drops => "drops",
            FaultClass::Skews => "skews",
            FaultClass::Inits => "inits",
            FaultClass::Guards => "guards",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FaultClass {
    type Err = String;
    fn from_str(s: &str) -> Result<FaultClass, String> {
        match s {
            "stuck" => Ok(FaultClass::Stuck),
            "drivers" => Ok(FaultClass::Drivers),
            "drops" => Ok(FaultClass::Drops),
            "skews" => Ok(FaultClass::Skews),
            "inits" => Ok(FaultClass::Inits),
            "guards" => Ok(FaultClass::Guards),
            other => Err(format!(
                "unknown fault class `{other}` (expected stuck|drivers|drops|skews|inits|guards)"
            )),
        }
    }
}

/// One concrete mutation of a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Force a register's init to `DISC` — the register presents no value
    /// until (if ever) something writes it.
    StuckAtDisc {
        /// The register whose init is cleared.
        register: String,
    },
    /// Add a spurious combinational module plus a transfer that drives
    /// `register` onto `bus` in `step` — a second driver on a bus the
    /// schedule already uses then, which the resolution function must
    /// turn into `ILLEGAL`.
    ExtraDriver {
        /// The double-driven bus.
        bus: String,
        /// The step in which both drivers assert.
        step: Step,
        /// The register the spurious driver reads.
        register: String,
    },
    /// Remove the transfer tuple at `index` entirely.
    DropTransfer {
        /// Index into the model's tuple list.
        index: usize,
    },
    /// Shift the write-back of the tuple at `index` by `delta` steps
    /// (±1), breaking the read-step + latency = write-step invariant.
    SkewWrite {
        /// Index into the model's tuple list.
        index: usize,
        /// The skew, −1 or +1 steps.
        delta: i32,
    },
    /// Replace a register's init with a different (seeded) value.
    CorruptInit {
        /// The register whose init changes.
        register: String,
        /// The corrupted value.
        value: i64,
    },
    /// Logically negate the guard of the transfer at `index`: a transfer
    /// that should fire stays silent and vice versa — a control fault
    /// with no extra driver for the resolution function to flag.
    FlipGuard {
        /// Index into the model's tuple list (must carry a guard).
        index: usize,
    },
    /// Remove the guard of the transfer at `index` entirely, forcing the
    /// transfer to fire unconditionally.
    ForceGuard {
        /// Index into the model's tuple list (must carry a guard).
        index: usize,
    },
}

impl FaultKind {
    /// The class this fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultKind::StuckAtDisc { .. } => FaultClass::Stuck,
            FaultKind::ExtraDriver { .. } => FaultClass::Drivers,
            FaultKind::DropTransfer { .. } => FaultClass::Drops,
            FaultKind::SkewWrite { .. } => FaultClass::Skews,
            FaultKind::CorruptInit { .. } => FaultClass::Inits,
            FaultKind::FlipGuard { .. } | FaultKind::ForceGuard { .. } => FaultClass::Guards,
        }
    }

    /// Checks that the fault can be expressed on `model` — the single
    /// applicability predicate shared by generation, the legacy
    /// per-mutant path ([`FaultKind::apply`]) and the batched plan-delta
    /// path, so the checks cannot drift.
    ///
    /// # Errors
    ///
    /// The reason the fault does not fit (also the text of the
    /// [`FaultOutcome::Inapplicable`] row a campaign would produce).
    pub fn check(&self, model: &RtModel) -> Result<(), String> {
        let check_register = |register: &str| {
            model
                .registers()
                .iter()
                .any(|r| r.name == register)
                .then_some(())
                .ok_or_else(|| format!("unknown register `{register}`"))
        };
        match self {
            FaultKind::StuckAtDisc { register } | FaultKind::CorruptInit { register, .. } => {
                check_register(register)
            }
            FaultKind::ExtraDriver {
                bus,
                step,
                register,
            } => {
                check_register(register)?;
                if !model.buses().iter().any(|b| b.name == *bus) {
                    return Err(format!("unknown bus `{bus}`"));
                }
                if *step < 1 || *step > model.cs_max() {
                    return Err(format!("spurious driver step {step} is out of range"));
                }
                Ok(())
            }
            FaultKind::DropTransfer { index } => {
                if *index >= model.tuples().len() {
                    return Err(format!("no transfer at index {index}"));
                }
                Ok(())
            }
            FaultKind::SkewWrite { index, delta } => {
                let tuple = model
                    .tuples()
                    .get(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?;
                let write = tuple
                    .write
                    .as_ref()
                    .ok_or_else(|| format!("transfer {index} has no write-back"))?;
                skew_target_step(write.step, *delta, model.cs_max()).map(|_| ())
            }
            FaultKind::FlipGuard { index } | FaultKind::ForceGuard { index } => {
                let tuple = model
                    .tuples()
                    .get(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?;
                if tuple.guard.is_none() {
                    return Err(format!("transfer {index} has no guard"));
                }
                Ok(())
            }
        }
    }

    /// Applies the fault to a copy of `model`, producing the mutant.
    ///
    /// # Errors
    ///
    /// A message when the mutation cannot be expressed on this model
    /// ([`FaultKind::check`]; generation only emits applicable faults,
    /// so hitting this is the caller's doing).
    pub fn apply(&self, model: &RtModel) -> Result<RtModel, String> {
        self.check(model)?;
        let mut m = model.clone();
        match self {
            FaultKind::StuckAtDisc { register } => {
                m.set_register_init(register, Value::Disc)
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::ExtraDriver {
                bus,
                step,
                register,
            } => {
                let spur = format!("SPUR_{bus}_{step}");
                m.add_module(ModuleDecl::single(
                    &spur,
                    Op::PassA,
                    ModuleTiming::Combinational,
                ))
                .map_err(|e| e.to_string())?;
                m.add_transfer(TransferTuple::new(*step, spur).src_a(register, bus))
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::DropTransfer { index } => {
                m.remove_transfer(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?;
            }
            FaultKind::SkewWrite { index, delta } => {
                let tuple = m
                    .tuples()
                    .get(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?
                    .clone();
                let mut skewed = tuple;
                let write = skewed
                    .write
                    .as_mut()
                    .ok_or_else(|| format!("transfer {index} has no write-back"))?;
                write.step = skew_target_step(write.step, *delta, m.cs_max())?;
                m.replace_transfer_unchecked(*index, skewed)
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::CorruptInit { register, value } => {
                m.set_register_init(register, Value::Num(*value))
                    .map_err(|e| e.to_string())?;
            }
            FaultKind::FlipGuard { index } | FaultKind::ForceGuard { index } => {
                let mut tuple = m
                    .tuples()
                    .get(*index)
                    .ok_or_else(|| format!("no transfer at index {index}"))?
                    .clone();
                tuple.guard = match self {
                    FaultKind::FlipGuard { .. } => tuple.guard.map(|g| g.flipped()),
                    _ => None,
                };
                m.replace_transfer_unchecked(*index, tuple)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(m)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::StuckAtDisc { register } => {
                write!(f, "stuck-at-DISC register `{register}`")
            }
            FaultKind::ExtraDriver {
                bus,
                step,
                register,
            } => write!(
                f,
                "spurious driver `{register}` on bus `{bus}` in step {step}"
            ),
            FaultKind::DropTransfer { index } => write!(f, "dropped transfer #{index}"),
            FaultKind::SkewWrite { index, delta } => {
                write!(f, "write of transfer #{index} skewed {delta:+} step(s)")
            }
            FaultKind::CorruptInit { register, value } => {
                write!(f, "corrupted init `{register}` = {value}")
            }
            FaultKind::FlipGuard { index } => {
                write!(f, "flipped guard of transfer #{index}")
            }
            FaultKind::ForceGuard { index } => {
                write!(f, "forced guard of transfer #{index}")
            }
        }
    }
}

/// How a mutant run was classified against the golden run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The mutant produced at least one `ILLEGAL`; the first conflict's
    /// localization is recorded.
    DetectedConflict {
        /// The conflict site's kind (bus, module port, register…).
        site: String,
        /// The conflicting signal's name.
        name: String,
        /// The control step the conflict became visible in.
        step: Step,
        /// The phase within the step.
        phase: Phase,
    },
    /// The mutant exhausted the campaign's delta-cycle budget.
    DeltaOverflow,
    /// No conflict, but a golden-run value monitor caught the first
    /// divergent `(step, phase, signal)` — the fault corrupted a value
    /// the resolution function had no reason to flag. Requires
    /// [`CampaignConfig::checkers`] to arm monitors.
    DetectedValue(MonitorViolation),
    /// No conflict and no monitor hit, but a mined functional invariant
    /// (range, reachable set, or pair relation) was violated. Requires
    /// [`CampaignConfig::checkers`] to arm invariants.
    DetectedInvariant(InvariantViolation),
    /// The run was clean but the final registers differ from the golden
    /// run — the fault escaped the conflict detector.
    SilentCorruption {
        /// First differing register (declaration order).
        register: String,
        /// Golden final value.
        expected: Value,
        /// Mutant final value.
        got: Value,
    },
    /// No conflict and no state difference: the fault had no observable
    /// effect.
    Masked,
    /// The fault does not fit the model ([`FaultKind::check`] failed);
    /// the row is quarantined instead of aborting the campaign.
    Inapplicable {
        /// Why the fault could not be applied.
        reason: String,
    },
}

impl FaultOutcome {
    /// Stable machine-readable status string.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultOutcome::DetectedConflict { .. } => "detected-conflict",
            FaultOutcome::DeltaOverflow => "delta-overflow",
            FaultOutcome::DetectedValue(_) => "detected-value",
            FaultOutcome::DetectedInvariant(_) => "detected-invariant",
            FaultOutcome::SilentCorruption { .. } => "silent-corruption",
            FaultOutcome::Masked => "masked",
            FaultOutcome::Inapplicable { .. } => "inapplicable",
        }
    }

    /// `true` when the fault was *detected* — the run observably failed
    /// (conflict, budget blowout, or a value-checker hit) rather than
    /// finishing with wrong or unchanged state.
    pub fn is_detected(&self) -> bool {
        matches!(
            self,
            FaultOutcome::DetectedConflict { .. }
                | FaultOutcome::DeltaOverflow
                | FaultOutcome::DetectedValue(_)
                | FaultOutcome::DetectedInvariant(_)
        )
    }

    /// `true` when the fault would have been detected even with the
    /// value checkers off — by the resolution function or the delta
    /// budget. This is the paper's baseline detector, so the
    /// checker-on/checker-off coverage gap is computable from one
    /// campaign's rows.
    pub fn is_baseline_detected(&self) -> bool {
        matches!(
            self,
            FaultOutcome::DetectedConflict { .. } | FaultOutcome::DeltaOverflow
        )
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultOutcome::DetectedConflict {
                site,
                name,
                step,
                phase,
            } => write!(
                f,
                "detected: ILLEGAL on {site} `{name}` in step {step} phase {phase}"
            ),
            FaultOutcome::DeltaOverflow => write!(f, "detected: delta budget exhausted"),
            FaultOutcome::DetectedValue(v) => write!(f, "detected: {v}"),
            FaultOutcome::DetectedInvariant(v) => write!(f, "detected: {v}"),
            FaultOutcome::SilentCorruption {
                register,
                expected,
                got,
            } => write!(
                f,
                "SILENT: register `{register}` ended {got}, golden run says {expected}"
            ),
            FaultOutcome::Masked => write!(f, "masked: no observable effect"),
            FaultOutcome::Inapplicable { reason } => write!(f, "inapplicable: {reason}"),
        }
    }
}

/// Which machinery runs the mutants — the campaign report is
/// byte-identical either way (pinned by tests and CI).
///
/// # Examples
///
/// ```
/// use clockless_verify::CampaignEngine;
///
/// let e: CampaignEngine = "legacy".parse()?;
/// assert_eq!(e, CampaignEngine::Legacy);
/// assert_eq!(e.to_string(), "legacy");
/// assert_eq!(CampaignEngine::default(), CampaignEngine::Batched);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CampaignEngine {
    /// Lower the golden plan once, run every mutant as a [`PlanDelta`]
    /// column of one lockstep [`ExecPlan::execute_batch`] walk.
    #[default]
    Batched,
    /// One fleet job per mutant model, each on a private kernel — the
    /// differential oracle for the batched engine.
    Legacy,
}

impl CampaignEngine {
    /// Stable machine-readable name (JSON and `--engine` grammar).
    pub fn as_str(self) -> &'static str {
        match self {
            CampaignEngine::Batched => "batched",
            CampaignEngine::Legacy => "legacy",
        }
    }
}

impl fmt::Display for CampaignEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for CampaignEngine {
    type Err = String;
    fn from_str(s: &str) -> Result<CampaignEngine, String> {
        match s {
            "batched" => Ok(CampaignEngine::Batched),
            "legacy" => Ok(CampaignEngine::Legacy),
            other => Err(format!(
                "unknown engine `{other}` (expected batched|legacy)"
            )),
        }
    }
}

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignConfig {
    /// PRNG seed; the same seed over the same model yields a
    /// byte-identical report.
    pub seed: u64,
    /// Classes to inject; empty means all of [`ALL_CLASSES`].
    pub classes: Vec<FaultClass>,
    /// Cap on the number of faults (deterministic prefix of the
    /// enumeration); `None` runs everything.
    pub max_faults: Option<usize>,
    /// Fleet worker threads for the mutant runs.
    pub workers: usize,
    /// Execution backend for the golden run and every mutant. Both
    /// engines are observably byte-identical, so the campaign report does
    /// not depend on this — it only selects the machinery (and lets CI
    /// exercise the compiled engine against the full mutant space).
    pub backend: Backend,
    /// Mutant-execution machinery; see [`CampaignEngine`]. Reports are
    /// byte-identical across engines.
    pub engine: CampaignEngine,
    /// Which value-checker families to arm (`--checkers` on the CLI).
    /// [`CheckerMode::Off`] reproduces the paper's baseline: the
    /// resolution function and the delta budget are the only detectors.
    pub checkers: CheckerMode,
    /// Optimization level for compiled-engine runs (golden and mutants;
    /// the interpreter ignores it). Reports are byte-identical across
    /// levels — like [`CampaignConfig::backend`], this only selects the
    /// machinery.
    pub opt: OptLevel,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xC10C_1E55,
            classes: Vec::new(),
            max_faults: None,
            workers: 1,
            backend: Backend::default(),
            engine: CampaignEngine::default(),
            checkers: CheckerMode::default(),
            opt: OptLevel::default(),
        }
    }
}

/// Errors from a fault campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultsError {
    /// The golden (unmutated) run failed; nothing to compare against.
    Golden {
        /// What went wrong.
        msg: String,
    },
    /// A mutation could not be applied to the model.
    Apply {
        /// The fault's description.
        fault: String,
        /// What went wrong.
        msg: String,
    },
    /// A mutant failed in a way the campaign cannot classify (build or
    /// unexpected kernel error, not a budget blowout).
    Mutant {
        /// The fault's description.
        fault: String,
        /// What went wrong.
        msg: String,
    },
    /// The batch engine failed.
    Fleet(FleetError),
    /// Generation produced no faults (empty model, or the class filter
    /// excluded everything).
    NoFaults,
}

impl fmt::Display for FaultsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultsError::Golden { msg } => write!(f, "golden run failed: {msg}"),
            FaultsError::Apply { fault, msg } => write!(f, "cannot apply {fault}: {msg}"),
            FaultsError::Mutant { fault, msg } => {
                write!(f, "unclassifiable mutant failure for {fault}: {msg}")
            }
            FaultsError::Fleet(e) => write!(f, "fleet engine: {e}"),
            FaultsError::NoFaults => write!(f, "no faults to inject"),
        }
    }
}

impl std::error::Error for FaultsError {}

impl From<FleetError> for FaultsError {
    fn from(e: FleetError) -> Self {
        FaultsError::Fleet(e)
    }
}

/// One campaign row: an injected fault and its classified outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRow {
    /// The injected fault.
    pub fault: FaultKind,
    /// The classified outcome of the mutant run.
    pub outcome: FaultOutcome,
}

/// Per-class coverage numbers: how many of the class's *applicable*
/// faults each detector tier caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassCoverage {
    /// The fault class.
    pub class: FaultClass,
    /// Faults detected by anything (conflicts, budget, value checkers).
    pub detected: usize,
    /// Faults the paper's baseline detectors alone caught (conflict or
    /// overflow) — the before-checkers number.
    pub baseline: usize,
    /// Applicable faults in the class (quarantined rows excluded).
    pub total: usize,
}

/// Results of a fault-injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The target model's name.
    pub model: String,
    /// The seed the campaign ran with.
    pub seed: u64,
    /// Delta-cycle budget each mutant ran under.
    pub delta_budget: u64,
    /// The value-checker families the campaign armed.
    pub checkers: CheckerMode,
    /// Per-fault rows, in generation order.
    pub rows: Vec<CampaignRow>,
    /// Merged kernel counters of every mutant run, with
    /// `injected_faults` stamped to the campaign size.
    pub totals: SimStats,
}

impl CampaignReport {
    /// Faults whose mutants observably failed (conflict, overflow, or a
    /// value-checker hit).
    pub fn detected(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_detected()).count()
    }

    /// Faults the baseline detectors (resolution function + delta
    /// budget) caught, regardless of the checker mode.
    pub fn baseline_detected(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.outcome.is_baseline_detected())
            .count()
    }

    /// Faults that escaped as silent corruption.
    pub fn silent(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, FaultOutcome::SilentCorruption { .. }))
            .count()
    }

    /// Faults with no observable effect.
    pub fn masked(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, FaultOutcome::Masked))
            .count()
    }

    /// Quarantined rows: faults that did not fit the model and never
    /// ran ([`FaultOutcome::Inapplicable`]).
    pub fn inapplicable(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r.outcome, FaultOutcome::Inapplicable { .. }))
            .count()
    }

    /// Faults that actually ran: injected minus quarantined. This is the
    /// denominator of every coverage number — a campaign must not look
    /// worse because the caller supplied faults that never executed.
    pub fn applicable(&self) -> usize {
        self.rows.len() - self.inapplicable()
    }

    /// Overall detection coverage in `[0, 1]`: detected / applicable.
    pub fn coverage(&self) -> f64 {
        if self.applicable() == 0 {
            return 0.0;
        }
        self.detected() as f64 / self.applicable() as f64
    }

    /// Baseline coverage in `[0, 1]`: what the campaign would have
    /// detected with checkers off (conflicts + overflows over the same
    /// applicable denominator).
    pub fn baseline_coverage(&self) -> f64 {
        if self.applicable() == 0 {
            return 0.0;
        }
        self.baseline_detected() as f64 / self.applicable() as f64
    }

    /// Per-class coverage, canonical class order, classes with no
    /// applicable faults omitted.
    pub fn class_coverage(&self) -> Vec<ClassCoverage> {
        ALL_CLASSES
            .iter()
            .filter_map(|&class| {
                let in_class: Vec<_> = self
                    .rows
                    .iter()
                    .filter(|r| {
                        r.fault.class() == class
                            && !matches!(r.outcome, FaultOutcome::Inapplicable { .. })
                    })
                    .collect();
                if in_class.is_empty() {
                    return None;
                }
                Some(ClassCoverage {
                    class,
                    detected: in_class.iter().filter(|r| r.outcome.is_detected()).count(),
                    baseline: in_class
                        .iter()
                        .filter(|r| r.outcome.is_baseline_detected())
                        .count(),
                    total: in_class.len(),
                })
            })
            .collect()
    }

    /// Renders the report as a deterministic JSON document — the same
    /// model, seed and config produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"campaign\": {{\"model\": \"{}\", \"seed\": {}, \"delta_budget\": {}, \
             \"checkers\": \"{}\", \"faults\": {}, \"applicable\": {}, \"detected\": {}, \
             \"baseline\": {}, \"silent\": {}, \"masked\": {}, \"coverage\": {:.4}, \
             \"baseline_coverage\": {:.4}}},",
            json_escape(&self.model),
            self.seed,
            self.delta_budget,
            self.checkers,
            self.rows.len(),
            self.applicable(),
            self.detected(),
            self.baseline_detected(),
            self.silent(),
            self.masked(),
            self.coverage(),
            self.baseline_coverage()
        );
        out.push_str("  \"classes\": [");
        let classes = self.class_coverage();
        for (i, c) in classes.iter().enumerate() {
            let comma = if i + 1 == classes.len() { "" } else { ", " };
            let _ = write!(
                out,
                "{{\"class\": \"{}\", \"detected\": {}, \"baseline\": {}, \"total\": {}}}{comma}",
                c.class, c.detected, c.baseline, c.total
            );
        }
        out.push_str("],\n  \"faults\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let comma = if i + 1 == self.rows.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"id\": {}, \"class\": \"{}\", \"fault\": \"{}\", \"outcome\": \"{}\", \
                 \"detail\": \"{}\"}}{}",
                i,
                row.fault.class(),
                json_escape(&row.fault.to_string()),
                row.outcome.as_str(),
                json_escape(&row.outcome.to_string()),
                comma
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "  ],\n  \"totals\": {{\"delta_cycles\": {}, \"process_activations\": {}, \
             \"injected_faults\": {}, \"retries\": {}}}",
            t.delta_cycles, t.process_activations, t.injected_faults, t.retries
        );
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault campaign on `{}` (seed {}, checkers {}): {} faults, {} detected ({:.0}%), \
             {} silent, {} masked",
            self.model,
            self.seed,
            self.checkers,
            self.rows.len(),
            self.detected(),
            self.coverage() * 100.0,
            self.silent(),
            self.masked()
        )?;
        for c in self.class_coverage() {
            write!(
                f,
                "  {:<8} {}/{} detected",
                c.class.as_str(),
                c.detected,
                c.total
            )?;
            if self.checkers != CheckerMode::Off {
                write!(f, " (baseline {})", c.baseline)?;
            }
            writeln!(f)?;
        }
        for row in &self.rows {
            writeln!(f, "  {:<50} {}", row.fault.to_string(), row.outcome)?;
        }
        Ok(())
    }
}

/// The step a skewed write-back lands on — the single range check shared
/// by fault generation and both campaign engines ([`FaultKind::check`]).
///
/// # Errors
///
/// A message when the target step leaves `1..=cs_max`.
fn skew_target_step(write_step: Step, delta: i32, cs_max: Step) -> Result<Step, String> {
    let step = write_step as i64 + i64::from(delta);
    if step < 1 || step > cs_max as i64 {
        return Err(format!("skewed write step {step} is out of range"));
    }
    Ok(step as Step)
}

/// splitmix64 — the same tiny deterministic PRNG the property tests use.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Enumerates the faults a campaign would inject, deterministically:
/// per-class enumeration in model-declaration order (seeded values only
/// where a fault needs one — corrupted inits), then a round-robin
/// interleave across the classes in canonical order. The interleave
/// makes any `max_faults` truncation sample every class evenly instead
/// of a prefix of whichever classes enumerate first.
pub fn generate_faults(model: &RtModel, config: &CampaignConfig) -> Vec<FaultKind> {
    let wants = |class: FaultClass| config.classes.is_empty() || config.classes.contains(&class);
    let mut rng = config.seed;
    let mut stuck = Vec::new();
    let mut drivers = Vec::new();
    let mut drops = Vec::new();
    let mut skews = Vec::new();
    let mut inits = Vec::new();
    let mut guards = Vec::new();

    if wants(FaultClass::Stuck) {
        for r in model.registers() {
            if r.init.is_num() {
                stuck.push(FaultKind::StuckAtDisc {
                    register: r.name.clone(),
                });
            }
        }
    }
    if wants(FaultClass::Drivers) {
        let mut seen: Vec<(String, Step)> = Vec::new();
        for tuple in model.tuples() {
            for route in [&tuple.src_a, &tuple.src_b].into_iter().flatten() {
                let key = (route.bus.clone(), tuple.read_step);
                if seen.contains(&key) {
                    continue; // one spurious driver per (bus, step)
                }
                seen.push(key);
                drivers.push(FaultKind::ExtraDriver {
                    bus: route.bus.clone(),
                    step: tuple.read_step,
                    register: route.register.clone(),
                });
            }
        }
    }
    if wants(FaultClass::Drops) {
        for index in 0..model.tuples().len() {
            drops.push(FaultKind::DropTransfer { index });
        }
    }
    if wants(FaultClass::Skews) {
        for (index, tuple) in model.tuples().iter().enumerate() {
            let Some(write) = &tuple.write else { continue };
            for delta in [-1i32, 1] {
                if skew_target_step(write.step, delta, model.cs_max()).is_ok() {
                    skews.push(FaultKind::SkewWrite { index, delta });
                }
            }
        }
    }
    if wants(FaultClass::Inits) {
        for r in model.registers() {
            let base = r.init.num().unwrap_or(0);
            let value = base.wrapping_add(1 + (splitmix64(&mut rng) % 997) as i64);
            inits.push(FaultKind::CorruptInit {
                register: r.name.clone(),
                value,
            });
        }
    }

    if wants(FaultClass::Guards) {
        for (index, tuple) in model.tuples().iter().enumerate() {
            if tuple.guard.is_some() {
                guards.push(FaultKind::FlipGuard { index });
                guards.push(FaultKind::ForceGuard { index });
            }
        }
    }

    // Round-robin across the classes in canonical order: stuck[0],
    // drivers[0], …, guards[0], stuck[1], … — deterministic, and a
    // truncated prefix covers every non-empty class.
    let mut buckets = [stuck, drivers, drops, skews, inits, guards].map(Vec::into_iter);
    let mut faults = Vec::new();
    loop {
        let before = faults.len();
        faults.extend(buckets.iter_mut().filter_map(Iterator::next));
        if faults.len() == before {
            break;
        }
    }

    if let Some(max) = config.max_faults {
        faults.truncate(max);
    }
    faults
}

/// Runs a seeded fault campaign on `model`: golden run, deterministic
/// fault generation, mutant execution on the configured
/// [`CampaignEngine`], outcome classification, coverage report.
///
/// # Errors
///
/// [`FaultsError`] when the golden run fails, a mutant fails
/// unclassifiably, or nothing was generated.
pub fn run_campaign(
    model: &RtModel,
    config: &CampaignConfig,
) -> Result<CampaignReport, FaultsError> {
    run_campaign_with_faults(model, generate_faults(model, config), config)
}

/// Runs a campaign over a caller-supplied fault list (the generation
/// step of [`run_campaign`] factored out). Faults that do not fit the
/// model are quarantined as [`FaultOutcome::Inapplicable`] rows rather
/// than aborting the campaign.
///
/// # Errors
///
/// [`FaultsError`] when the golden run fails, a mutant fails
/// unclassifiably, or `faults` is empty.
pub fn run_campaign_with_faults(
    model: &RtModel,
    faults: Vec<FaultKind>,
    config: &CampaignConfig,
) -> Result<CampaignReport, FaultsError> {
    if faults.is_empty() {
        return Err(FaultsError::NoFaults);
    }
    let golden = config
        .backend
        .execute(model, &ExecOptions::traced().at_opt(config.opt))
        .map_err(|e| FaultsError::Golden { msg: e.to_string() })?
        .summary;
    let golden_registers: HashMap<&str, Value> = golden
        .registers
        .iter()
        .map(|(n, v)| (n.as_str(), *v))
        .collect();

    // One clean-run recording arms both checker families for every
    // mutant; a model that cannot run cleanly has no golden reference.
    let check = build_checkers(model, config.checkers)
        .map_err(|e| FaultsError::Golden { msg: e.to_string() })?;

    // Twice the exact quiescence bound (1 + 6·CS_MAX deltas) plus slack:
    // roomy for every legitimate mutant, tight enough that an oscillating
    // one is cut off after a few extra steps, not 10^8 deltas later.
    let delta_budget = 2 * (1 + 6 * model.cs_max() as u64) + 16;

    // Quarantine un-applicable faults up front — one applicability
    // predicate for both engines, so their reports cannot differ here.
    let quarantined: Vec<Option<FaultOutcome>> = faults
        .iter()
        .map(|f| {
            f.check(model)
                .err()
                .map(|reason| FaultOutcome::Inapplicable { reason })
        })
        .collect();

    let (outcomes, totals) = match config.engine {
        CampaignEngine::Batched => run_mutants_batched(
            model,
            &faults,
            &quarantined,
            &golden_registers,
            delta_budget,
            check.as_ref(),
            config.opt,
        )?,
        CampaignEngine::Legacy => run_mutants_legacy(
            model,
            &faults,
            &quarantined,
            &golden_registers,
            delta_budget,
            check.as_ref(),
            config,
        )?,
    };

    let rows: Vec<CampaignRow> = faults
        .into_iter()
        .zip(quarantined)
        .zip(outcomes)
        .map(|((fault, pre), ran)| CampaignRow {
            fault,
            outcome: pre.unwrap_or_else(|| ran.expect("applicable fault ran")),
        })
        .collect();

    let mut totals = totals;
    totals.injected_faults = rows.len() as u64;
    Ok(CampaignReport {
        model: model.name().to_string(),
        seed: config.seed,
        delta_budget,
        checkers: config.checkers,
        rows,
        totals,
    })
}

/// Classifies a clean mutant run: first register diverging from the
/// golden run (declaration order) or [`FaultOutcome::Masked`]. Registers
/// the mutant added — none today — would not count.
fn classify_clean(registers: &[(String, Value)], golden: &HashMap<&str, Value>) -> FaultOutcome {
    let diff = registers
        .iter()
        .find(|(name, value)| golden.get(name.as_str()).is_some_and(|g| g != value));
    match diff {
        Some((register, got)) => FaultOutcome::SilentCorruption {
            register: register.clone(),
            expected: golden[register.as_str()],
            got: *got,
        },
        None => FaultOutcome::Masked,
    }
}

/// Classifies a conflict-free mutant run under the detector precedence
/// the campaign documents: value monitor > mined invariant > silent
/// corruption > masked. Both engines route through this, so a verdict
/// cannot depend on the machinery that produced it.
fn classify_checked(
    check: Option<&CheckReport>,
    registers: &[(String, Value)],
    golden: &HashMap<&str, Value>,
) -> FaultOutcome {
    if let Some(report) = check {
        if let Some(v) = &report.monitor {
            return FaultOutcome::DetectedValue(v.clone());
        }
        if let Some(v) = &report.invariant {
            return FaultOutcome::DetectedInvariant(v.clone());
        }
    }
    classify_clean(registers, golden)
}

/// The batched engine: lower the golden plan once, express every
/// applicable fault as a [`PlanDelta`] and run all mutants in lockstep
/// via [`ExecPlan::execute_batch`]. Returns per-fault outcomes (`None`
/// on quarantined slots) and the merged kernel totals.
#[allow(clippy::too_many_arguments)]
fn run_mutants_batched(
    model: &RtModel,
    faults: &[FaultKind],
    quarantined: &[Option<FaultOutcome>],
    golden: &HashMap<&str, Value>,
    delta_budget: u64,
    check: Option<&CheckProgram>,
    opt: OptLevel,
) -> Result<(Vec<Option<FaultOutcome>>, SimStats), FaultsError> {
    let plan = ExecPlan::lower(model);
    let mut deltas = Vec::new();
    let mut slots = Vec::new(); // fault index of each delta column
    for (i, fault) in faults.iter().enumerate() {
        if quarantined[i].is_some() {
            continue;
        }
        let delta = fault_to_delta(&plan, fault).map_err(|msg| FaultsError::Apply {
            fault: fault.to_string(),
            msg,
        })?;
        deltas.push(delta);
        slots.push(i);
    }
    let options = ExecOptions {
        delta_limit: Some(delta_budget),
        opt,
        ..Default::default()
    };
    let outs = match check {
        Some(program) => {
            let checks = plan
                .resolve_checks(program)
                .map_err(|msg| FaultsError::Golden { msg })?;
            plan.execute_batch_checked(&deltas, &options, &checks)
        }
        None => plan.execute_batch(&deltas, &options),
    }
    .map_err(|e| FaultsError::Golden { msg: e.to_string() })?;

    let mut outcomes: Vec<Option<FaultOutcome>> = vec![None; faults.len()];
    let mut totals = SimStats::default();
    for (i, out) in slots.into_iter().zip(outs) {
        totals.merge(&out.stats);
        outcomes[i] = Some(if out.overflowed {
            FaultOutcome::DeltaOverflow
        } else if let Some(first) = &out.first_conflict {
            FaultOutcome::DetectedConflict {
                site: first.site.to_string(),
                name: first.name.clone(),
                step: first.visible_at.step,
                phase: first.visible_at.phase,
            }
        } else {
            classify_checked(out.check.as_ref(), &out.registers, golden)
        });
    }
    Ok((outcomes, totals))
}

/// The legacy engine and differential oracle: every applicable fault
/// becomes a mutant model run as its own fleet job on a private kernel.
#[allow(clippy::too_many_arguments)]
fn run_mutants_legacy(
    model: &RtModel,
    faults: &[FaultKind],
    quarantined: &[Option<FaultOutcome>],
    golden: &HashMap<&str, Value>,
    delta_budget: u64,
    check: Option<&CheckProgram>,
    config: &CampaignConfig,
) -> Result<(Vec<Option<FaultOutcome>>, SimStats), FaultsError> {
    let mut jobs = Vec::new();
    let mut slots = Vec::new(); // fault index of each job
    for (i, fault) in faults.iter().enumerate() {
        if quarantined[i].is_some() {
            continue;
        }
        let mutant = fault.apply(model).map_err(|msg| FaultsError::Apply {
            fault: fault.to_string(),
            msg,
        })?;
        jobs.push(JobSpec::new(
            format!("fault_{i:03}"),
            JobSource::Model(Box::new(mutant)),
        ));
        slots.push(i);
    }
    let mut outcomes: Vec<Option<FaultOutcome>> = vec![None; faults.len()];
    if jobs.is_empty() {
        return Ok((outcomes, SimStats::default()));
    }
    let fleet_config = FleetConfig {
        delta_budget: Some(delta_budget),
        backend: Some(config.backend),
        check: check.map(|p| Arc::new(p.clone())),
        opt: config.opt,
        ..FleetConfig::default()
    };
    let report = run_batch_with(&BatchSpec { jobs }, config.workers, &fleet_config)?;

    for (i, job) in slots.into_iter().zip(&report.jobs) {
        outcomes[i] = Some(match job {
            clockless_fleet::JobOutcome::Failed(q) => match q.kind {
                FailureKind::DeltaBudget | FailureKind::WallBudget => FaultOutcome::DeltaOverflow,
                _ => {
                    return Err(FaultsError::Mutant {
                        fault: faults[i].to_string(),
                        msg: q.error.clone(),
                    })
                }
            },
            clockless_fleet::JobOutcome::Ok(result) => {
                if let Some(first) = result.conflicts.first() {
                    FaultOutcome::DetectedConflict {
                        site: first.site.to_string(),
                        name: first.name.clone(),
                        step: first.visible_at.step,
                        phase: first.visible_at.phase,
                    }
                } else {
                    classify_checked(result.check.as_ref(), &result.registers, golden)
                }
            }
        });
    }
    Ok((outcomes, report.totals))
}

/// Translates a model-level [`FaultKind`] into the equivalent
/// [`PlanDelta`] on the golden plan.
fn fault_to_delta(plan: &ExecPlan, fault: &FaultKind) -> Result<PlanDelta, String> {
    match fault {
        FaultKind::StuckAtDisc { register } => plan.delta_set_init(register, Value::Disc),
        FaultKind::CorruptInit { register, value } => {
            plan.delta_set_init(register, Value::Num(*value))
        }
        FaultKind::DropTransfer { index } => plan.delta_drop_tuple(*index),
        FaultKind::SkewWrite { index, delta } => plan.delta_skew_write(*index, *delta),
        FaultKind::ExtraDriver {
            bus,
            step,
            register,
        } => plan.delta_extra_driver(bus, *step, register),
        FaultKind::FlipGuard { index } => plan.delta_flip_guard(*index),
        FaultKind::ForceGuard { index } => plan.delta_force_guard(*index),
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;

    fn campaign(classes: &[FaultClass], workers: usize) -> CampaignReport {
        let config = CampaignConfig {
            classes: classes.to_vec(),
            workers,
            ..CampaignConfig::default()
        };
        run_campaign(&fig1_model(3, 4), &config).expect("campaign runs")
    }

    #[test]
    fn generation_is_deterministic_and_covers_all_classes() {
        let model = fig1_model(3, 4);
        let config = CampaignConfig::default();
        let a = generate_faults(&model, &config);
        let b = generate_faults(&model, &config);
        assert_eq!(a, b, "same seed, same faults");
        // fig1: 2 stuck (R1, R2), 2 drivers (B1@5, B2@5), 1 drop,
        // 2 skews (write step 6 → 5 and 7), 2 corrupted inits. No guard
        // faults — fig1 has no guarded transfers.
        assert_eq!(a.len(), 9);
        for class in ALL_CLASSES {
            if class == FaultClass::Guards {
                assert!(
                    !a.iter().any(|f| f.class() == class),
                    "fig1 has no guards to fault"
                );
                continue;
            }
            assert!(
                a.iter().any(|f| f.class() == class),
                "missing class {class}"
            );
        }
        // A different seed changes only the seeded values (inits).
        let other = generate_faults(
            &model,
            &CampaignConfig {
                seed: 1,
                ..CampaignConfig::default()
            },
        );
        assert_eq!(a.len(), other.len());
        assert_ne!(a, other, "corrupted init values depend on the seed");
    }

    #[test]
    fn class_filter_restricts_generation() {
        let model = fig1_model(3, 4);
        let config = CampaignConfig {
            classes: vec![FaultClass::Drivers],
            ..CampaignConfig::default()
        };
        let faults = generate_faults(&model, &config);
        assert_eq!(faults.len(), 2);
        assert!(faults.iter().all(|f| f.class() == FaultClass::Drivers));
        // max_faults takes a deterministic prefix.
        let capped = generate_faults(
            &model,
            &CampaignConfig {
                max_faults: Some(3),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(capped.len(), 3);
    }

    #[test]
    fn same_seed_produces_byte_identical_reports() {
        let a = campaign(&[], 1);
        let b = campaign(&[], 4);
        assert_eq!(a.to_json(), b.to_json(), "seed + model pin the report");
        assert_eq!(a, b);
    }

    #[test]
    fn dual_driver_conflicts_are_fully_detected_on_fig1() {
        let report = campaign(&[FaultClass::Drivers], 2);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            match &row.outcome {
                FaultOutcome::DetectedConflict {
                    name, step, phase, ..
                } => {
                    // Both spurious drivers assert in step 5; the conflict
                    // becomes visible one delta later (rb at the earliest).
                    assert_eq!(*step, 5, "{name}");
                    assert!(*phase >= Phase::Rb, "{phase}");
                }
                other => panic!("driver fault escaped: {other}"),
            }
        }
        let cov = report.class_coverage();
        assert_eq!(
            cov,
            vec![ClassCoverage {
                class: FaultClass::Drivers,
                detected: 2,
                baseline: 2,
                total: 2
            }]
        );
        assert!((report.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stuck_at_disc_is_detected_via_mixed_operands() {
        // A stuck register feeds the ADD a DISC operand next to a live
        // one — §2.6's operand rules turn that into ILLEGAL.
        let report = campaign(&[FaultClass::Stuck], 1);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.detected(), 2);
        assert_eq!(report.silent(), 0);
    }

    #[test]
    fn dropped_transfers_escape_as_silent_corruption() {
        // No second driver, no ILLEGAL — just a register that never gets
        // written. This is the documented boundary of the detector.
        let report = campaign(&[FaultClass::Drops], 1);
        assert_eq!(report.rows.len(), 1);
        match &report.rows[0].outcome {
            FaultOutcome::SilentCorruption {
                register,
                expected,
                got,
            } => {
                assert_eq!(register, "R1");
                assert_eq!(*expected, Value::Num(7), "golden run: R1 := R1 + R2");
                assert_eq!(*got, Value::Num(3), "mutant: R1 keeps its init");
            }
            other => panic!("expected silent corruption, got {other}"),
        }
    }

    #[test]
    fn full_campaign_report_is_honest_about_coverage() {
        let report = campaign(&[], 2);
        assert_eq!(report.rows.len(), 9);
        assert_eq!(report.totals.injected_faults, 9);
        // stuck + drivers detected; drops/skews/inits escape on fig1.
        assert_eq!(report.detected(), 4);
        assert!(report.silent() >= 4, "drops/skews/inits corrupt silently");
        assert!(report.coverage() < 1.0);
        let json = report.to_json();
        assert!(
            json.contains("\"class\": \"stuck\", \"detected\": 2, \"baseline\": 2, \"total\": 2"),
            "{json}"
        );
        assert!(
            json.contains("\"class\": \"drivers\", \"detected\": 2, \"baseline\": 2, \"total\": 2"),
            "{json}"
        );
        assert!(json.contains("\"checkers\": \"off\""), "{json}");
        assert!(json.contains("\"applicable\": 9"), "{json}");
        assert!(json.contains("\"injected_faults\": 9"), "{json}");
        let text = report.to_string();
        assert!(text.contains("9 faults"), "{text}");
        assert!(text.contains("stuck"), "{text}");
    }

    #[test]
    fn campaign_reports_are_backend_independent() {
        // The whole campaign — golden run, mutant fleet, classification —
        // must be byte-identical whichever engine executes it.
        let interp = campaign(&[], 2);
        let config = CampaignConfig {
            workers: 2,
            backend: Backend::Compiled,
            ..CampaignConfig::default()
        };
        let compiled = run_campaign(&fig1_model(3, 4), &config).expect("campaign runs");
        assert_eq!(interp.to_json(), compiled.to_json());
        assert_eq!(interp, compiled);
    }

    #[test]
    fn fault_class_round_trips_through_strings() {
        for class in ALL_CLASSES {
            assert_eq!(class.as_str().parse::<FaultClass>(), Ok(class));
        }
        assert!("meteor".parse::<FaultClass>().is_err());
    }

    #[test]
    fn campaign_engine_round_trips_through_strings() {
        for engine in [CampaignEngine::Batched, CampaignEngine::Legacy] {
            assert_eq!(engine.as_str().parse::<CampaignEngine>(), Ok(engine));
        }
        let err = "turbo".parse::<CampaignEngine>().unwrap_err();
        assert!(err.contains("turbo"), "{err}");
    }

    #[test]
    fn max_faults_takes_a_round_robin_prefix_across_classes() {
        // The cap must sample every class, not the first classes'
        // enumeration order. fig1's first round is one fault per class,
        // in canonical class order.
        let model = fig1_model(3, 4);
        let full = generate_faults(&model, &CampaignConfig::default());
        let capped = generate_faults(
            &model,
            &CampaignConfig {
                max_faults: Some(5),
                ..CampaignConfig::default()
            },
        );
        assert_eq!(capped.as_slice(), &full[..5], "cap is a prefix");
        let classes: Vec<FaultClass> = capped.iter().map(|f| f.class()).collect();
        // One fault per class, in canonical order — minus guards, which
        // fig1 (no guarded transfers) never generates.
        assert_eq!(
            classes,
            &ALL_CLASSES[..5],
            "one fault per non-empty class, in order"
        );
        assert_eq!(
            capped[0],
            FaultKind::StuckAtDisc {
                register: "R1".into()
            }
        );
        assert_eq!(
            capped[1],
            FaultKind::ExtraDriver {
                bus: "B1".into(),
                step: 5,
                register: "R1".into()
            }
        );
        assert_eq!(capped[2], FaultKind::DropTransfer { index: 0 });
        assert_eq!(
            capped[3],
            FaultKind::SkewWrite {
                index: 0,
                delta: -1
            }
        );
        assert!(matches!(
            &capped[4],
            FaultKind::CorruptInit { register, .. } if register == "R1"
        ));
    }

    #[test]
    fn inapplicable_faults_are_quarantined_rows_not_campaign_aborts() {
        let model = fig1_model(3, 4);
        let faults = vec![
            FaultKind::StuckAtDisc {
                register: "R1".into(),
            },
            // Skew lands on step 11 > CS_MAX 7.
            FaultKind::SkewWrite { index: 0, delta: 5 },
            FaultKind::DropTransfer { index: 9 },
            FaultKind::StuckAtDisc {
                register: "R9".into(),
            },
        ];
        let mut reports = Vec::new();
        for engine in [CampaignEngine::Batched, CampaignEngine::Legacy] {
            let config = CampaignConfig {
                engine,
                ..CampaignConfig::default()
            };
            let report = run_campaign_with_faults(&model, faults.clone(), &config)
                .expect("inapplicable faults must not abort the campaign");
            assert_eq!(report.rows.len(), 4, "{engine}");
            assert!(report.rows[0].outcome.is_detected(), "{engine}");
            for (row, needle) in report.rows[1..].iter().zip([
                "skewed write step 11 is out of range",
                "no transfer at index 9",
                "unknown register `R9`",
            ]) {
                match &row.outcome {
                    FaultOutcome::Inapplicable { reason } => {
                        assert_eq!(reason, needle, "{engine}");
                        assert!(!row.outcome.is_detected());
                        assert_eq!(row.outcome.as_str(), "inapplicable");
                    }
                    other => panic!("{engine}: expected quarantine, got {other}"),
                }
            }
            assert_eq!(report.totals.injected_faults, 4, "{engine}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1], "engines agree on quarantines");
        assert_eq!(reports[0].to_json(), reports[1].to_json());
        let json = reports[0].to_json();
        assert!(json.contains("\"outcome\": \"inapplicable\""), "{json}");
    }

    #[test]
    fn checkers_close_the_silent_corruption_gap_on_fig1() {
        let model = fig1_model(3, 4);
        let off = run_campaign(&model, &CampaignConfig::default()).expect("baseline runs");
        assert!(off.coverage() < 0.5, "fig1 baseline is ~44%");

        let all = run_campaign(
            &model,
            &CampaignConfig {
                checkers: CheckerMode::All,
                ..CampaignConfig::default()
            },
        )
        .expect("checked campaign runs");
        assert_eq!(all.rows.len(), 9);
        assert!(
            all.coverage() >= 0.85,
            "checkers must close the gap: {:.2}",
            all.coverage()
        );
        // Baseline numbers are recoverable from the checked campaign and
        // match the unchecked one exactly.
        assert_eq!(all.baseline_detected(), off.detected());
        assert!((all.baseline_coverage() - off.coverage()).abs() < 1e-12);
        // Per class: the conflict-detected classes are untouched; the
        // formerly silent classes are now fully caught.
        for c in all.class_coverage() {
            assert_eq!(c.detected, c.total, "{} fully detected", c.class);
            let was = off
                .class_coverage()
                .into_iter()
                .find(|o| o.class == c.class)
                .expect("same classes");
            assert_eq!(c.baseline, was.detected, "{} baseline", c.class);
        }
        // The detector keeps the exact first-violation site, like the
        // conflict localization does.
        let drop_row = all
            .rows
            .iter()
            .find(|r| matches!(r.fault, FaultKind::DropTransfer { .. }))
            .expect("fig1 has a drop fault");
        match &drop_row.outcome {
            FaultOutcome::DetectedValue(v) => {
                assert_eq!(drop_row.outcome.as_str(), "detected-value");
                assert!(drop_row.outcome.is_detected());
                assert!(!drop_row.outcome.is_baseline_detected());
                assert!(v.site().is_some(), "divergence is step/phase-localized");
            }
            other => panic!("drop should hit the value monitor, got {other}"),
        }
        let json = all.to_json();
        assert!(json.contains("\"checkers\": \"all\""), "{json}");
        assert!(json.contains("\"outcome\": \"detected-value\""), "{json}");
        assert!(json.contains("value monitor"), "{json}");
        let text = all.to_string();
        assert!(text.contains("checkers all"), "{text}");
        assert!(text.contains("baseline"), "{text}");
    }

    #[test]
    fn guard_faults_cover_flip_and_force_on_a_guarded_model() {
        // `R1 := R2` guarded by `R1 /= 0`, true in the golden run.
        // Flipping the guard suppresses the transfer without adding a
        // driver — no conflict, so the baseline sees silent corruption
        // and the value monitors close the gap. Forcing the guard away
        // is masked: the guard was already true.
        let model = clockless_core::text::parse_model(
            "model gf steps 2\nregister R1 init 1\nregister R2 init 5\n\
             bus B1\nbus B2\nmodule CP ops passa comb\n\
             transfer if R1 /= 0 then (R2,B1,-,-,1,CP,1,B2,R1)\n",
        )
        .expect("guarded model parses");
        for engine in [CampaignEngine::Batched, CampaignEngine::Legacy] {
            let report = run_campaign(
                &model,
                &CampaignConfig {
                    classes: vec![FaultClass::Guards],
                    engine,
                    ..CampaignConfig::default()
                },
            )
            .expect("guard campaign runs");
            assert_eq!(report.rows.len(), 2, "{engine}");
            let flip = report
                .rows
                .iter()
                .find(|r| matches!(r.fault, FaultKind::FlipGuard { .. }))
                .expect("flip row");
            match &flip.outcome {
                FaultOutcome::SilentCorruption {
                    register,
                    expected,
                    got,
                } => {
                    assert_eq!(register, "R1", "{engine}");
                    assert_eq!(*expected, Value::Num(5), "{engine}");
                    assert_eq!(*got, Value::Num(1), "{engine}");
                }
                other => panic!("{engine}: flipped guard should corrupt silently: {other}"),
            }
            let force = report
                .rows
                .iter()
                .find(|r| matches!(r.fault, FaultKind::ForceGuard { .. }))
                .expect("force row");
            assert!(
                matches!(force.outcome, FaultOutcome::Masked),
                "{engine}: forcing a true guard changes nothing: {}",
                force.outcome
            );

            let checked = run_campaign(
                &model,
                &CampaignConfig {
                    classes: vec![FaultClass::Guards],
                    engine,
                    checkers: CheckerMode::All,
                    ..CampaignConfig::default()
                },
            )
            .expect("checked guard campaign runs");
            let flip = checked
                .rows
                .iter()
                .find(|r| matches!(r.fault, FaultKind::FlipGuard { .. }))
                .expect("flip row");
            assert!(
                matches!(flip.outcome, FaultOutcome::DetectedValue(_)),
                "{engine}: monitors must catch the flipped guard: {}",
                flip.outcome
            );
            let cov = checked.class_coverage();
            assert_eq!(
                cov,
                vec![ClassCoverage {
                    class: FaultClass::Guards,
                    detected: 1,
                    baseline: 0,
                    total: 2
                }],
                "{engine}: flip caught by monitors, force masked, none by conflicts"
            );
        }
    }

    #[test]
    fn invariants_alone_catch_out_of_range_inits() {
        // Mined invariants are weaker than monitors (a dropped transfer
        // leaves every register inside its observed range) but they need
        // no golden trajectory at mutant-run time — and a corrupted init
        // lands outside the mined range at delta 0.
        let model = fig1_model(3, 4);
        let report = run_campaign(
            &model,
            &CampaignConfig {
                classes: vec![FaultClass::Inits],
                checkers: CheckerMode::Invariants,
                ..CampaignConfig::default()
            },
        )
        .expect("campaign runs");
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            match &row.outcome {
                FaultOutcome::DetectedInvariant(v) => {
                    assert_eq!(row.outcome.as_str(), "detected-invariant");
                    assert_eq!(v.delta, 0, "corrupted inits violate at delta 0");
                    assert!(v.to_string().contains("at initialization"), "{v}");
                }
                other => panic!("corrupted init escaped the invariants: {other}"),
            }
        }
        let json = report.to_json();
        assert!(
            json.contains("\"outcome\": \"detected-invariant\""),
            "{json}"
        );
    }

    #[test]
    fn coverage_denominator_excludes_quarantined_rows() {
        // One applicable (detected) fault plus three quarantined ones:
        // the campaign is 100% covered, not 25% — inapplicable rows
        // never ran, so they cannot count as escapes.
        let model = fig1_model(3, 4);
        let faults = vec![
            FaultKind::StuckAtDisc {
                register: "R1".into(),
            },
            FaultKind::SkewWrite { index: 0, delta: 5 },
            FaultKind::DropTransfer { index: 9 },
            FaultKind::StuckAtDisc {
                register: "R9".into(),
            },
        ];
        for engine in [CampaignEngine::Batched, CampaignEngine::Legacy] {
            let config = CampaignConfig {
                engine,
                ..CampaignConfig::default()
            };
            let report =
                run_campaign_with_faults(&model, faults.clone(), &config).expect("campaign runs");
            assert_eq!(report.rows.len(), 4, "{engine}");
            assert_eq!(report.inapplicable(), 3, "{engine}");
            assert_eq!(report.applicable(), 1, "{engine}");
            assert_eq!(report.detected(), 1, "{engine}");
            assert!(
                (report.coverage() - 1.0).abs() < 1e-12,
                "{engine}: quarantined rows must not dilute coverage ({})",
                report.coverage()
            );
            // Class rows count only applicable faults: the stuck class
            // drops its quarantined `R9` row, and the skew/drop classes
            // (quarantined only) vanish entirely.
            assert_eq!(
                report.class_coverage(),
                vec![ClassCoverage {
                    class: FaultClass::Stuck,
                    detected: 1,
                    baseline: 1,
                    total: 1
                }],
                "{engine}"
            );
            let json = report.to_json();
            assert!(json.contains("\"faults\": 4"), "{json}");
            assert!(json.contains("\"applicable\": 1"), "{json}");
            assert!(json.contains("\"coverage\": 1.0000"), "{json}");
        }
    }

    #[test]
    fn skew_checks_cannot_drift_between_generation_and_apply() {
        // Every skew generation emits must apply; every ±1 skew it
        // refuses must be refused by `apply` with the same message.
        let model = fig1_model(3, 4);
        let generated = generate_faults(
            &model,
            &CampaignConfig {
                classes: vec![FaultClass::Skews],
                ..CampaignConfig::default()
            },
        );
        assert!(!generated.is_empty());
        for fault in &generated {
            fault.apply(&model).expect("generated skews apply");
        }
        for index in 0..model.tuples().len() {
            for delta in [-1i32, 1] {
                let fault = FaultKind::SkewWrite { index, delta };
                let generated_it = generated.contains(&fault);
                match fault.apply(&model) {
                    Ok(_) => assert!(generated_it, "applied but not generated: {fault}"),
                    Err(msg) => {
                        assert!(!generated_it, "generated but refused: {fault}");
                        assert!(msg.contains("out of range"), "{msg}");
                    }
                }
            }
        }
    }

    #[test]
    fn boundary_skews_reach_step_one_and_cs_max() {
        // Writes skewed onto the schedule edges: step 1 (earliest legal)
        // and CS_MAX (forcing the mutant — and only the mutant — through
        // the flush delta). Both engines must agree byte-for-byte.
        let mut model = clockless_core::RtModel::new("edges", 3);
        model.add_register_init("R1", Value::Num(3)).unwrap();
        model.add_register_init("R2", Value::Num(4)).unwrap();
        model.add_bus("B1").unwrap();
        model.add_bus("B2").unwrap();
        model
            .add_module(ModuleDecl::single(
                "ADD",
                Op::Add,
                ModuleTiming::Pipelined { latency: 1 },
            ))
            .unwrap();
        model
            .add_transfer(
                TransferTuple::new(1, "ADD")
                    .src_a("R1", "B1")
                    .src_b("R2", "B2")
                    .write(2, "B1", "R1"),
            )
            .unwrap();
        let faults = vec![
            FaultKind::SkewWrite {
                index: 0,
                delta: -1,
            }, // write step 2 → 1
            FaultKind::SkewWrite { index: 0, delta: 1 }, // write step 2 → 3 = CS_MAX
        ];
        for fault in &faults {
            fault.check(&model).expect("boundary skews are legal");
        }
        let mut reports = Vec::new();
        for engine in [CampaignEngine::Batched, CampaignEngine::Legacy] {
            let config = CampaignConfig {
                engine,
                ..CampaignConfig::default()
            };
            let report =
                run_campaign_with_faults(&model, faults.clone(), &config).expect("campaign runs");
            assert_eq!(report.rows.len(), 2, "{engine}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0].to_json(), reports[1].to_json());
    }

    #[test]
    fn class_filters_with_nothing_to_generate_report_no_faults() {
        // A model with no transfers: drops/skews/drivers filter down to
        // nothing, and the campaign says so on both engines.
        let mut model = clockless_core::RtModel::new("idle", 3);
        model.add_register_init("R1", Value::Num(9)).unwrap();
        model.add_bus("B1").unwrap();
        for classes in [
            vec![FaultClass::Drops],
            vec![FaultClass::Skews],
            vec![FaultClass::Drivers],
            vec![FaultClass::Guards],
        ] {
            for engine in [CampaignEngine::Batched, CampaignEngine::Legacy] {
                let config = CampaignConfig {
                    classes: classes.clone(),
                    engine,
                    ..CampaignConfig::default()
                };
                assert_eq!(
                    run_campaign(&model, &config),
                    Err(FaultsError::NoFaults),
                    "{engine} {classes:?}"
                );
            }
        }
    }

    /// Byte-identity of the batched and legacy engines on one model,
    /// across both execution backends, both checker extremes, and
    /// several worker counts.
    fn assert_engines_agree(model: &RtModel, context: &str) {
        for backend in [Backend::Interpreted, Backend::Compiled] {
            for checkers in [CheckerMode::Off, CheckerMode::All] {
                let mut reports = Vec::new();
                for (engine, workers) in [
                    (CampaignEngine::Batched, 1),
                    (CampaignEngine::Legacy, 1),
                    (CampaignEngine::Legacy, 3),
                ] {
                    let config = CampaignConfig {
                        backend,
                        engine,
                        workers,
                        checkers,
                        ..CampaignConfig::default()
                    };
                    reports.push(run_campaign(model, &config).unwrap_or_else(|e| {
                        panic!("{context} ({backend}/{engine}/{checkers}): {e}")
                    }));
                }
                for other in &reports[1..] {
                    assert_eq!(&reports[0], other, "{context} ({backend}/{checkers})");
                    assert_eq!(
                        reports[0].to_json(),
                        other.to_json(),
                        "{context} ({backend}/{checkers})"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_and_legacy_agree_on_the_rtl_corpus() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../models");
        let mut checked = 0;
        for entry in std::fs::read_dir(dir).expect("models directory") {
            let path = entry.expect("entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rtl") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable");
            let model = clockless_core::text::parse_model(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert_engines_agree(&model, &path.display().to_string());
            checked += 1;
        }
        assert!(checked >= 5, "corpus shrank to {checked} models");
    }

    #[test]
    fn batched_and_legacy_agree_on_the_iks_chips() {
        use clockless_iks::prelude::*;
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        let ik = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)
            .expect("ik chip")
            .model;
        assert_engines_agree(&ik, "ik chip");

        let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
        let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
        let fir = clockless_iks::build_fir_chip(samples, coeffs).expect("fir chip");
        assert_engines_agree(&fir, "fir chip");
    }
}
