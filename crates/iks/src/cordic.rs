//! The CORDIC core's arithmetic, shared with the golden model.
//!
//! The IKS chip's trigonometric work runs on a dedicated **cordic core**
//! resource (§3: "we have modeled resources (called MACC,
//! multiplier/accumulator and cordic core)"). At the register-transfer
//! level the core is a sequential module offering `Atan2Fx`/`SqrtFx`
//! operations; their bit-exact reference arithmetic lives in
//! `clockless_core::op` and is re-exported here in the chip's Q16.16
//! format so the algorithmic golden model computes with *exactly* the
//! operations the datapath performs — the property that makes the
//! bottom-up verification of §3 a bit-exact comparison.

use crate::fixed::FRAC;

/// Four-quadrant arctangent in Q16.16 (radians).
///
/// # Examples
///
/// ```
/// use clockless_iks::cordic::atan2;
/// use clockless_iks::fixed::{from_fx, to_fx};
/// let a = atan2(to_fx(1.0), to_fx(1.0));
/// assert!((from_fx(a) - std::f64::consts::FRAC_PI_4).abs() < 1e-3);
/// ```
pub fn atan2(y: i64, x: i64) -> i64 {
    clockless_core::op::atan2_fx(y, x, FRAC)
}

/// Square root in Q16.16 (exact floor).
///
/// # Panics
///
/// Panics if `a` is negative.
pub fn sqrt(a: i64) -> i64 {
    clockless_core::op::sqrt_fx(a, FRAC)
}

/// `(sin θ, cos θ)` for a Q16.16 angle (any magnitude) — the CORDIC
/// core's rotation mode, used by the forward-kinematics microprogram.
pub fn sincos(theta: i64) -> (i64, i64) {
    clockless_core::op::sincos_fx(theta, FRAC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::{from_fx, to_fx};

    #[test]
    fn atan2_sweeps_the_circle() {
        for deg in (0..360).step_by(15) {
            let rad = (deg as f64).to_radians();
            let y = to_fx(rad.sin() * 2.0);
            let x = to_fx(rad.cos() * 2.0);
            let got = from_fx(atan2(y, x));
            let expect = (rad.sin() * 2.0).atan2(rad.cos() * 2.0);
            assert!(
                (got - expect).abs() < 2e-3,
                "deg {deg}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn sqrt_matches_float() {
        for v in [0.25f64, 1.0, 2.0, 1234.5] {
            let got = from_fx(sqrt(to_fx(v)));
            assert!((got - v.sqrt()).abs() < 1e-3, "sqrt({v}) = {got}");
        }
    }

    #[test]
    fn matches_module_operation_semantics() {
        use clockless_core::{Op, Value};
        let y = to_fx(0.7);
        let x = to_fx(-1.3);
        assert_eq!(
            Op::Atan2Fx(FRAC).apply(Value::Num(y), Value::Num(x)),
            Value::Num(atan2(y, x)),
        );
        let a = to_fx(7.0);
        assert_eq!(
            Op::SqrtFx(FRAC).apply(Value::Num(a), Value::Disc),
            Value::Num(sqrt(a)),
        );
    }
}
