//! A small declarative text format for RT models.
//!
//! The paper describes models as VHDL source. We do not reproduce a VHDL
//! parser (see DESIGN.md); instead this line-oriented format captures the
//! same declarations so models can be written, versioned and diffed as
//! text:
//!
//! ```text
//! # the Fig. 1 example
//! model example steps 7
//! register R1 init 3
//! register R2 init 4
//! bus B1
//! bus B2
//! module ADD ops add pipelined 1
//! transfer (R1,B1,R2,B2,5,ADD,6,B1,R1)
//! ```
//!
//! Module timing is `comb`, `pipelined <latency>` or
//! `sequential <latency>`. Transfers use the paper's 9-tuple notation
//! (with the `MODULE:op` extension). `#` starts a comment.

use std::fmt;

use crate::model::{ModelError, RtModel};
use crate::op::Op;
use crate::resource::{ModuleDecl, ModuleTiming};
use crate::tuples::TransferTuple;
use crate::value::Value;

/// Error parsing a model description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl ParseModelError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        ParseModelError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseModelError {}

impl From<(usize, ModelError)> for ParseModelError {
    fn from((line, e): (usize, ModelError)) -> Self {
        ParseModelError::new(line, e.to_string())
    }
}

/// Parses a model from its textual description.
///
/// # Errors
///
/// Returns a [`ParseModelError`] locating the first offending line; model
/// validation errors (unknown resources, wrong write step, …) are
/// reported the same way.
///
/// # Examples
///
/// ```
/// use clockless_core::text::parse_model;
///
/// let m = parse_model("
///     model tiny steps 3
///     register A init 1
///     register B
///     bus X
///     bus Y
///     module CP ops passa comb
///     transfer (A,X,-,-,2,CP,2,Y,B)
/// ")?;
/// assert_eq!(m.cs_max(), 3);
/// # Ok::<(), clockless_core::text::ParseModelError>(())
/// ```
pub fn parse_model(text: &str) -> Result<RtModel, ParseModelError> {
    let mut model: Option<RtModel> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "model" => {
                if model.is_some() {
                    return Err(ParseModelError::new(lineno, "duplicate `model` line"));
                }
                let (name, steps) = match tokens.as_slice() {
                    [_, name, "steps", n] => (*name, *n),
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            "expected `model <name> steps <N>`",
                        ))
                    }
                };
                let steps: u32 = steps.parse().map_err(|_| {
                    ParseModelError::new(lineno, format!("bad step count `{steps}`"))
                })?;
                model = Some(RtModel::new(name, steps));
            }
            "register" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                match tokens.as_slice() {
                    [_, name] => m
                        .add_register(*name)
                        .map_err(|e| ParseModelError::from((lineno, e)))?,
                    [_, name, "init", v] => {
                        let v: i64 = v.parse().map_err(|_| {
                            ParseModelError::new(lineno, format!("bad init value `{v}`"))
                        })?;
                        m.add_register_init(*name, Value::Num(v))
                            .map_err(|e| ParseModelError::from((lineno, e)))?
                    }
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            "expected `register <name> [init <value>]`",
                        ))
                    }
                };
            }
            "bus" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                match tokens.as_slice() {
                    [_, name] => m
                        .add_bus(*name)
                        .map_err(|e| ParseModelError::from((lineno, e)))?,
                    _ => return Err(ParseModelError::new(lineno, "expected `bus <name>`")),
                };
            }
            "module" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                let (name, ops_str, timing_tokens) = match tokens.as_slice() {
                    [_, name, "ops", ops, rest @ ..] if !rest.is_empty() => (*name, *ops, rest),
                    _ => return Err(ParseModelError::new(
                        lineno,
                        "expected `module <name> ops <op[,op…]> <comb|pipelined N|sequential N>`",
                    )),
                };
                let ops = ops_str
                    .split(',')
                    .map(|s| s.parse::<Op>())
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| ParseModelError::new(lineno, e.to_string()))?;
                let timing = match timing_tokens {
                    ["comb"] => ModuleTiming::Combinational,
                    ["pipelined", n] => ModuleTiming::Pipelined {
                        latency: n.parse().map_err(|_| {
                            ParseModelError::new(lineno, format!("bad latency `{n}`"))
                        })?,
                    },
                    ["sequential", n] => ModuleTiming::Sequential {
                        latency: n.parse().map_err(|_| {
                            ParseModelError::new(lineno, format!("bad latency `{n}`"))
                        })?,
                    },
                    _ => {
                        return Err(ParseModelError::new(
                            lineno,
                            "timing must be `comb`, `pipelined <N>` or `sequential <N>`",
                        ))
                    }
                };
                m.add_module(ModuleDecl {
                    name: name.to_string(),
                    ops,
                    timing,
                })
                .map_err(|e| ParseModelError::from((lineno, e)))?;
            }
            "transfer" => {
                let m = model
                    .as_mut()
                    .ok_or_else(|| ParseModelError::new(lineno, "`model` line must come first"))?;
                let tuple_text = line["transfer".len()..].trim();
                let tuple: TransferTuple =
                    tuple_text
                        .parse()
                        .map_err(|e: crate::tuples::ParseTupleError| {
                            ParseModelError::new(lineno, e.to_string())
                        })?;
                m.add_transfer(tuple)
                    .map_err(|e| ParseModelError::from((lineno, e)))?;
            }
            other => {
                return Err(ParseModelError::new(
                    lineno,
                    format!("unknown directive `{other}`"),
                ))
            }
        }
    }
    model.ok_or_else(|| ParseModelError::new(1, "no `model` line found"))
}

/// Renders a model in the textual format; [`parse_model`] of the result
/// reproduces the model.
pub fn to_text(model: &RtModel) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let _ = writeln!(out, "model {} steps {}", model.name(), model.cs_max());
    for r in model.registers() {
        match r.init {
            Value::Disc => {
                let _ = writeln!(out, "register {}", r.name);
            }
            Value::Num(n) => {
                let _ = writeln!(out, "register {} init {}", r.name, n);
            }
            Value::Illegal => {
                // Unreachable for built models; keep the text loadable.
                let _ = writeln!(out, "register {}", r.name);
            }
        }
    }
    for b in model.buses() {
        let _ = writeln!(out, "bus {}", b.name);
    }
    for m in model.modules() {
        let ops: Vec<String> = m.ops.iter().map(|o| o.mnemonic()).collect();
        let timing = match m.timing {
            ModuleTiming::Combinational => "comb".to_string(),
            ModuleTiming::Pipelined { latency } => format!("pipelined {latency}"),
            ModuleTiming::Sequential { latency } => format!("sequential {latency}"),
        };
        let _ = writeln!(out, "module {} ops {} {}", m.name, ops.join(","), timing);
    }
    for t in model.tuples() {
        let _ = writeln!(out, "transfer {t}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;

    #[test]
    fn fig1_roundtrips_through_text() {
        let m = fig1_model(3, 4);
        let text = to_text(&m);
        let m2 = parse_model(&text).unwrap();
        assert_eq!(m2.name(), m.name());
        assert_eq!(m2.cs_max(), m.cs_max());
        assert_eq!(m2.registers(), m.registers());
        assert_eq!(m2.buses(), m.buses());
        assert_eq!(m2.modules(), m.modules());
        assert_eq!(m2.tuples(), m.tuples());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let m =
            parse_model("# header\n\nmodel x steps 2\n  register A # trailing\n bus B\n").unwrap();
        assert_eq!(m.registers().len(), 1);
        assert_eq!(m.buses().len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_model("model x steps 2\nbogus Y\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn model_line_must_come_first() {
        let err = parse_model("register A\nmodel x steps 2\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn validation_errors_surface_with_line() {
        let err = parse_model(
            "model x steps 9\nregister A\nbus B\nmodule ADD ops add pipelined 1\n\
             transfer (A,B,A,B,5,ADD,9,B,A)\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.msg.contains("write-back"));
    }

    #[test]
    fn sequential_and_multi_op_modules_parse() {
        let m = parse_model(
            "model x steps 4\nmodule ALU ops add,sub,shr comb\nmodule MUL ops mulfx12 sequential 2\n",
        )
        .unwrap();
        assert_eq!(m.modules()[0].ops.len(), 3);
        assert_eq!(
            m.modules()[1].timing,
            ModuleTiming::Sequential { latency: 2 }
        );
        assert_eq!(m.modules()[1].ops[0], Op::MulFx(12));
    }

    #[test]
    fn missing_model_line_is_error() {
        assert!(parse_model("# nothing here\n").is_err());
    }
}
