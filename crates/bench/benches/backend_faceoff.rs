//! Writes `BENCH_backend.json` at the repository root: the interpreted
//! delta kernel vs the compiled phase-schedule engine — at `-O0` (the
//! generic schedule walker) and `-O2` (the specialized micro-op
//! stream) — head to head on the Fig. 1 model and the IKS chip corpus,
//! single-threaded.
//!
//! Per the workspace convention, counters (`cs_max`, `tuples`,
//! `equivalent`) are machine-independent; `*_ns` and the derived
//! `speedup` are machine-local. Every row first proves observational
//! byte-equality via `clockless_verify::backend_equiv`, so the numbers
//! compare two engines computing the *same* answer.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use clockless_core::model::fig1_model;
use clockless_core::{Backend, ExecOptions, OptLevel, RtModel};
use clockless_iks::prelude::*;
use clockless_iks::{build_fir_chip, build_ik_chip};
use clockless_verify::backend_equiv;

/// One (model, backend-pair) measurement.
struct Row {
    model: &'static str,
    cs_max: u32,
    tuples: usize,
    interpreted_ns: u64,
    compiled_o0_ns: u64,
    compiled_ns: u64,
    speedup: f64,
    opt_speedup: f64,
    equivalent: bool,
}

/// Best-of-5 mean wall time per run for one backend, amortized over an
/// inner loop so sub-microsecond runs still measure cleanly.
fn time_backend(backend: Backend, model: &RtModel, opt: OptLevel, iters: u32) -> u64 {
    let options = ExecOptions::default().at_opt(opt);
    let mut best = u64::MAX;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..iters {
            let outcome = backend.execute(model, &options).expect("runs");
            std::hint::black_box(outcome);
        }
        let ns = t.elapsed().as_nanos() as u64 / u64::from(iters);
        best = best.min(ns);
    }
    best
}

fn main() {
    let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
    let ik = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)
        .expect("builds")
        .model;
    let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
    let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
    let fir = build_fir_chip(samples, coeffs).expect("builds");
    let targets: [(&'static str, RtModel, u32); 3] = [
        ("fig1", fig1_model(3, 4), 400),
        ("iks_ik", ik, 40),
        ("iks_fir", fir, 40),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, model, iters) in &targets {
        let equivalent = backend_equiv(model).is_ok();
        assert!(equivalent, "{name}: backends diverge — bench numbers void");
        let interpreted_ns = time_backend(Backend::Interpreted, model, OptLevel::O0, *iters);
        let compiled_o0_ns = time_backend(Backend::Compiled, model, OptLevel::O0, *iters);
        let compiled_ns = time_backend(Backend::Compiled, model, OptLevel::O2, *iters);
        let speedup = interpreted_ns as f64 / compiled_ns as f64;
        let opt_speedup = compiled_o0_ns as f64 / compiled_ns as f64;
        rows.push(Row {
            model: name,
            cs_max: model.cs_max().into(),
            tuples: model.tuples().len(),
            interpreted_ns,
            compiled_o0_ns,
            compiled_ns,
            speedup,
            opt_speedup,
            equivalent,
        });
        eprintln!(
            "{name:<8} cs_max={:<3} interpreted={:>9} ns  compiled-O0={:>9} ns  \
             compiled-O2={:>9} ns  speedup={speedup:.2}x  opt={opt_speedup:.2}x",
            model.cs_max(),
            interpreted_ns,
            compiled_o0_ns,
            compiled_ns
        );
    }

    // The acceptance bar for the compiled engine: never slower than the
    // interpreter on the single-threaded corpus it was built for.
    assert!(
        rows.iter().all(|r| r.speedup > 1.0),
        "compiled backend lost a head-to-head run"
    );

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench backend_faceoff\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let per_step_i = r.interpreted_ns as f64 / f64::from(r.cs_max);
        let per_step_o0 = r.compiled_o0_ns as f64 / f64::from(r.cs_max);
        let per_step_c = r.compiled_ns as f64 / f64::from(r.cs_max);
        let _ = writeln!(
            out,
            "    {{\"model\": \"{}\", \"cs_max\": {}, \"tuples\": {}, \
             \"interpreted_ns\": {}, \"compiled_o0_ns\": {}, \"compiled_o2_ns\": {}, \
             \"interpreted_ns_per_step\": {:.0}, \"compiled_o0_ns_per_step\": {:.0}, \
             \"compiled_o2_ns_per_step\": {:.0}, \"speedup\": {:.2}, \
             \"opt_speedup\": {:.2}, \"equivalent\": {}}}{}",
            r.model,
            r.cs_max,
            r.tuples,
            r.interpreted_ns,
            r.compiled_o0_ns,
            r.compiled_ns,
            per_step_i,
            per_step_o0,
            per_step_c,
            r.speedup,
            r.opt_speedup,
            r.equivalent,
            comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_backend.json");
    std::fs::write(&path, out).expect("writes BENCH_backend.json");
    eprintln!(
        "backend faceoff: {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
