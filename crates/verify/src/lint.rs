//! Schedule lints: dead transfers, unused resources, latent hazards.
//!
//! Beyond hard conflicts (ILLEGAL values), a schedule can be *wasteful*
//! or *suspicious* in ways the paper's methodology makes mechanically
//! checkable from the tuples alone: results that nothing ever reads,
//! registers that are written but never consumed, declared resources no
//! transfer touches, and reads of registers that provably hold nothing.
//! These are warnings, not errors — the model still simulates.

use std::collections::HashSet;
use std::fmt;

use clockless_core::model::StorageRead;
use clockless_core::{RtModel, Step, Value};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Lint {
    /// A register is written but its value is never read afterwards.
    DeadWrite {
        /// The register.
        register: String,
        /// The step whose `cr` phase stores the value.
        step: Step,
    },
    /// A register is read at a step where it provably holds no value
    /// (never preloaded, no earlier commit) — the module will see `DISC`
    /// or poison the datapath.
    ReadOfUndefined {
        /// The register.
        register: String,
        /// The reading step.
        step: Step,
    },
    /// A declared register no transfer reads or writes.
    UnusedRegister(String),
    /// A declared bus no transfer rides.
    UnusedBus(String),
    /// A declared module no transfer initiates.
    UnusedModule(String),
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::DeadWrite { register, step } => {
                write!(f, "write into `{register}` at step {step} is never read")
            }
            Lint::ReadOfUndefined { register, step } => write!(
                f,
                "`{register}` is read at step {step} but holds no value by then"
            ),
            Lint::UnusedRegister(r) => write!(f, "register `{r}` is never used"),
            Lint::UnusedBus(b) => write!(f, "bus `{b}` is never used"),
            Lint::UnusedModule(m) => write!(f, "module `{m}` is never used"),
        }
    }
}

/// Lints a model's schedule. Findings are ordered: dead writes, undefined
/// reads, then unused resources.
pub fn lint_model(model: &RtModel) -> Vec<Lint> {
    let mut findings = Vec::new();

    // Reads and writes per register.
    let mut reads: Vec<(String, Step)> = Vec::new();
    let mut writes: Vec<(String, Step)> = Vec::new();
    let mut used_buses: HashSet<&str> = HashSet::new();
    let mut used_modules: HashSet<&str> = HashSet::new();
    // A register-indexed memory endpoint `M[R]` also reads its address
    // register at the access step.
    let addr_read = |name: &str, step: Step, reads: &mut Vec<(String, Step)>| {
        if let Ok(StorageRead::MemIndirect { addr, .. }) = model.resolve_storage(name) {
            reads.push((model.registers()[addr.0 as usize].name.clone(), step));
        }
    };
    for t in model.tuples() {
        used_modules.insert(&t.module);
        for r in [&t.src_a, &t.src_b].into_iter().flatten() {
            reads.push((r.register.clone(), t.read_step));
            addr_read(&r.register, t.read_step, &mut reads);
            used_buses.insert(&r.bus);
        }
        // Guard operands are read at every phase the guard is evaluated
        // in: the read step and (when the transfer writes) the write
        // step.
        if let Some(g) = &t.guard {
            for r in g.registers() {
                reads.push((r.to_string(), t.read_step));
                if let Some(w) = &t.write {
                    reads.push((r.to_string(), w.step));
                }
            }
        }
        if let Some(w) = &t.write {
            writes.push((w.register.clone(), w.step));
            addr_read(&w.register, w.step, &mut reads);
            used_buses.insert(&w.bus);
        }
    }

    // Dead writes: a commit at step s is live if some read of the same
    // register happens at a step > s before the next overwrite, or the
    // value survives to the end (observable output — only counted as
    // live if the register is *ever* read; final observability is the
    // caller's judgement, so we only flag overwritten-unread commits).
    // Memory endpoints fold onto their memory's base name for the
    // dataflow lints below: register-indexed addressing aliases the
    // words, so per-word liveness is not statically decidable — the
    // whole memory is treated as one cell (conservative: no false
    // dead-write/undefined-read findings from aliasing).
    let base = |name: &str| -> String {
        match model.resolve_storage(name) {
            Ok(StorageRead::MemWord { mem, .. }) | Ok(StorageRead::MemIndirect { mem, .. }) => {
                model.memories()[mem.0 as usize].name.clone()
            }
            _ => name.to_string(),
        }
    };

    for (reg, step) in &writes {
        if model.register_by_name(reg).is_none() {
            continue; // memory word: aliasing hides later reads
        }
        let next_overwrite = writes
            .iter()
            .filter(|(r, s)| r == reg && s > step)
            .map(|(_, s)| *s)
            .min();
        let Some(end) = next_overwrite else {
            continue; // final value: observable after the run
        };
        let read_between = reads
            .iter()
            .any(|(r, s)| r == reg && *s > *step && *s <= end);
        if !read_between {
            findings.push(Lint::DeadWrite {
                register: reg.clone(),
                step: *step,
            });
        }
    }

    // Reads of provably-undefined registers.
    for (reg, step) in &reads {
        let preloaded = match model.resolve_storage(reg).expect("validated tuple") {
            StorageRead::Register(rid) => model.registers()[rid.0 as usize].init != Value::Disc,
            StorageRead::MemWord { mem, .. } | StorageRead::MemIndirect { mem, .. } => {
                model.memories()[mem.0 as usize].init != Value::Disc
            }
        };
        if preloaded {
            continue;
        }
        let key = base(reg);
        let written_before = writes.iter().any(|(r, s)| base(r) == key && s < step);
        if !written_before {
            findings.push(Lint::ReadOfUndefined {
                register: reg.clone(),
                step: *step,
            });
        }
    }

    // Unused resources.
    for r in model.registers() {
        let touched =
            reads.iter().any(|(n, _)| n == &r.name) || writes.iter().any(|(n, _)| n == &r.name);
        if !touched {
            findings.push(Lint::UnusedRegister(r.name.clone()));
        }
    }
    for b in model.buses() {
        if !used_buses.contains(b.name.as_str()) {
            findings.push(Lint::UnusedBus(b.name.clone()));
        }
    }
    for m in model.modules() {
        if !used_modules.contains(m.name.as_str()) {
            findings.push(Lint::UnusedModule(m.name.clone()));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;
    use clockless_core::prelude::*;

    #[test]
    fn fig1_is_clean() {
        assert_eq!(lint_model(&fig1_model(1, 2)), Vec::new());
    }

    fn playground() -> RtModel {
        let mut m = RtModel::new("lintme", 10);
        m.add_register_init("A", Value::Num(1)).unwrap();
        m.add_register("T").unwrap();
        m.add_register("U").unwrap();
        m.add_bus("X").unwrap();
        m.add_bus("Y").unwrap();
        m.add_module(ModuleDecl::single(
            "CP",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m
    }

    #[test]
    fn dead_write_detected() {
        let mut m = playground();
        // T := A at step 2, overwritten at step 4 without a read between.
        m.add_transfer(
            TransferTuple::new(2, "CP")
                .src_a("A", "X")
                .write(2, "Y", "T"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(4, "CP")
                .src_a("A", "X")
                .write(4, "Y", "T"),
        )
        .unwrap();
        let lints = lint_model(&m);
        assert!(lints.contains(&Lint::DeadWrite {
            register: "T".into(),
            step: 2
        }));
        // The step-4 write is the final value: not flagged.
        assert!(!lints.contains(&Lint::DeadWrite {
            register: "T".into(),
            step: 4
        }));
    }

    #[test]
    fn read_between_writes_is_live() {
        let mut m = playground();
        m.add_transfer(
            TransferTuple::new(2, "CP")
                .src_a("A", "X")
                .write(2, "Y", "T"),
        )
        .unwrap();
        // Read T at step 3…
        m.add_transfer(
            TransferTuple::new(3, "CP")
                .src_a("T", "X")
                .write(3, "Y", "U"),
        )
        .unwrap();
        // …then overwrite at step 4.
        m.add_transfer(
            TransferTuple::new(4, "CP")
                .src_a("A", "X")
                .write(4, "Y", "T"),
        )
        .unwrap();
        let lints = lint_model(&m);
        assert!(!lints
            .iter()
            .any(|l| matches!(l, Lint::DeadWrite { register, .. } if register == "T")));
    }

    #[test]
    fn read_of_undefined_detected() {
        let mut m = playground();
        // U is never written nor preloaded, yet read at step 2.
        m.add_transfer(
            TransferTuple::new(2, "CP")
                .src_a("U", "X")
                .write(2, "Y", "T"),
        )
        .unwrap();
        let lints = lint_model(&m);
        assert!(lints.contains(&Lint::ReadOfUndefined {
            register: "U".into(),
            step: 2
        }));
    }

    #[test]
    fn unused_resources_detected() {
        let mut m = playground();
        m.add_bus("Z").unwrap();
        m.add_module(ModuleDecl::single(
            "NEG",
            Op::Neg,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP")
                .src_a("A", "X")
                .write(2, "Y", "T"),
        )
        .unwrap();
        let lints = lint_model(&m);
        assert!(lints.contains(&Lint::UnusedRegister("U".into())));
        assert!(lints.contains(&Lint::UnusedBus("Z".into())));
        assert!(lints.contains(&Lint::UnusedModule("NEG".into())));
    }

    #[test]
    fn hls_outputs_are_lint_clean() {
        use clockless_hls::prelude::*;
        let g = diffeq();
        let inputs = [("x", 1), ("y", 2), ("u", 3), ("dx", 1)]
            .into_iter()
            .collect();
        let resources = clockless_hls::ResourceSet::unconstrained(&g);
        let syn = synthesize(&g, &resources, &inputs).unwrap();
        assert_eq!(lint_model(&syn.model), Vec::new());
    }

    #[test]
    fn iks_chip_is_lint_clean_for_its_inputs() {
        use clockless_iks::prelude::*;
        let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
        let chip = build_ik_chip(to_fx(1.0), to_fx(1.0), constants).unwrap();
        let lints = lint_model(&chip.model);
        // The chip declares the full Fig. 3 inventory; the IK program
        // uses a subset — unused-resource lints are expected (the spare
        // adders, R2/R3, M7 and the unused J slot), but no dataflow
        // lints.
        assert!(!lints
            .iter()
            .any(|l| matches!(l, Lint::DeadWrite { .. } | Lint::ReadOfUndefined { .. })));
    }
}
