//! Classic high-level-synthesis workloads as dataflow graphs.
//!
//! These are the dataflow kernels the HLS literature of the paper's era
//! schedules and allocates: FIR filters, Horner polynomial evaluation and
//! the HAL differential-equation benchmark, plus a deterministic random
//! DAG generator for property tests and benches.

use clockless_core::Op;

use crate::dfg::{Dfg, NodeId, Operand};

/// An `n`-tap FIR filter: `y = Σ c_i · x_i` with constant coefficients
/// `coeffs` and inputs `x0 … x{n-1}`.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn fir(coeffs: &[i64]) -> Dfg {
    assert!(!coeffs.is_empty(), "FIR needs at least one tap");
    let mut g = Dfg::new(format!("fir{}", coeffs.len()));
    let mut acc: Option<NodeId> = None;
    for (i, &c) in coeffs.iter().enumerate() {
        let x = format!("x{i}");
        let prod = g
            .node(Op::Mul, x.as_str(), c)
            .expect("fresh inputs are valid operands");
        acc = Some(match acc {
            None => prod,
            Some(a) => g.node(Op::Add, a, prod).expect("nodes exist"),
        });
    }
    g.output("y", acc.expect("at least one tap"))
        .expect("single output");
    g
}

/// Horner evaluation of `p(x) = c_0 + c_1·x + … + c_n·x^n`:
/// `((c_n·x + c_{n-1})·x + …)·x + c_0`, input `x`.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn horner(coeffs: &[i64]) -> Dfg {
    assert!(
        !coeffs.is_empty(),
        "polynomial needs at least one coefficient"
    );
    let mut g = Dfg::new(format!("horner{}", coeffs.len() - 1));
    let mut acc: Option<NodeId> = None;
    for &c in coeffs.iter().rev() {
        acc = Some(match acc {
            None => {
                // Highest coefficient: seed the accumulator with c (a
                // pass-through node so the value lives in the datapath).
                g.unary(Op::PassA, c).expect("constants are valid")
            }
            Some(a) => {
                let shifted = g.node(Op::Mul, a, "x").expect("nodes exist");
                g.node(Op::Add, shifted, c).expect("nodes exist")
            }
        });
    }
    g.output("p", acc.expect("at least one coefficient"))
        .expect("single output");
    g
}

/// The HAL differential-equation benchmark (Paulin & Knight), the classic
/// scheduling example contemporary with the paper: one Euler step of
/// `y'' + 3xy' + 3y = 0`.
///
/// Inputs `x`, `y`, `u` (= `y'`), `dx`; outputs:
///
/// * `x1 = x + dx`
/// * `u1 = u − 3·x·u·dx − 3·y·dx`
/// * `y1 = y + u·dx`
pub fn diffeq() -> Dfg {
    let mut g = Dfg::new("diffeq");
    // x1 = x + dx
    let x1 = g.node(Op::Add, "x", "dx").expect("valid");
    // t1 = 3*x, t2 = u*dx, t3 = t1*t2 = 3*x*u*dx
    let t1 = g.node(Op::Mul, 3, "x").expect("valid");
    let t2 = g.node(Op::Mul, "u", "dx").expect("valid");
    let t3 = g.node(Op::Mul, t1, t2).expect("valid");
    // t4 = 3*y, t5 = t4*dx = 3*y*dx
    let t4 = g.node(Op::Mul, 3, "y").expect("valid");
    let t5 = g.node(Op::Mul, t4, "dx").expect("valid");
    // u1 = (u - t3) - t5
    let d1 = g.node(Op::Sub, "u", t3).expect("valid");
    let u1 = g.node(Op::Sub, d1, t5).expect("valid");
    // y1 = y + t2
    let y1 = g.node(Op::Add, "y", t2).expect("valid");
    g.output("x1", x1).expect("fresh");
    g.output("u1", u1).expect("fresh");
    g.output("y1", y1).expect("fresh");
    g
}

/// A deterministic pseudo-random DAG with `n` operation nodes over
/// `inputs` primary inputs, reproducible from `seed` (xorshift64*; no
/// external randomness so results are stable across runs and platforms).
///
/// Operations are drawn from `{Add, Sub, Mul, Min, Max, Xor}`; operands
/// are earlier nodes (biased towards recent ones, giving realistic
/// dependence depth), primary inputs or small constants. Every sink node
/// becomes an output.
///
/// # Panics
///
/// Panics if `n == 0` or `inputs == 0`.
pub fn random_dag(seed: u64, n: usize, inputs: usize) -> Dfg {
    assert!(n > 0, "need at least one node");
    assert!(inputs > 0, "need at least one input");
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — plenty for workload generation.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        state
    };
    const OPS: [Op; 6] = [Op::Add, Op::Sub, Op::Mul, Op::Min, Op::Max, Op::Xor];

    let mut g = Dfg::new(format!("rand{n}s{seed}"));
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        let op = OPS[(next() % OPS.len() as u64) as usize];
        let mut pick = |g: &Dfg| -> Operand {
            let r = next() % 100;
            if i > 0 && r < 55 {
                // Bias towards recent nodes for non-trivial depth.
                let back = (next() % 4).min(i as u64 - 1) as usize;
                Operand::Node(ids[i - 1 - back])
            } else if r < 85 {
                Operand::Input(format!("in{}", next() % inputs as u64))
            } else {
                let _ = g; // operands validated on insertion
                Operand::Const((next() % 17) as i64 - 8)
            }
        };
        let a = pick(&g);
        let b = pick(&g);
        ids.push(g.node(op, a, b).expect("operands reference existing nodes"));
    }
    // Sinks become outputs (at least the last node).
    let mut any = false;
    for (k, &id) in ids.iter().enumerate() {
        if g.succs(id).is_empty() {
            g.output(format!("out{k}"), id).expect("unique names");
            any = true;
        }
    }
    assert!(any, "last node is always a sink");
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fir_evaluates_dot_product() {
        let g = fir(&[1, 2, 3]);
        let inputs: HashMap<&str, i64> = [("x0", 10), ("x1", 20), ("x2", 30)].into_iter().collect();
        let r = g.evaluate(&inputs).unwrap();
        assert_eq!(r["y"], 10 + 40 + 90);
    }

    #[test]
    fn horner_evaluates_polynomial() {
        // p(x) = 2 + 3x + 5x^2 at x = 4: 2 + 12 + 80 = 94.
        let g = horner(&[2, 3, 5]);
        let r = g.evaluate(&[("x", 4)].into_iter().collect()).unwrap();
        assert_eq!(r["p"], 94);
    }

    #[test]
    fn horner_degree_zero_is_constant() {
        let g = horner(&[7]);
        let r = g.evaluate(&HashMap::new()).unwrap();
        assert_eq!(r["p"], 7);
    }

    #[test]
    fn diffeq_computes_euler_step() {
        let g = diffeq();
        let inputs: HashMap<&str, i64> = [("x", 1), ("y", 2), ("u", 3), ("dx", 1)]
            .into_iter()
            .collect();
        let r = g.evaluate(&inputs).unwrap();
        assert_eq!(r["x1"], 2);
        // u1 = 3 - 3*1*3*1 - 3*2*1 = 3 - 9 - 6 = -12
        assert_eq!(r["u1"], -12);
        // y1 = 2 + 3*1 = 5
        assert_eq!(r["y1"], 5);
    }

    #[test]
    fn random_dag_is_reproducible_and_evaluable() {
        let g1 = random_dag(42, 30, 4);
        let g2 = random_dag(42, 30, 4);
        assert_eq!(g1.nodes(), g2.nodes());
        assert_eq!(g1.len(), 30);
        let names: Vec<String> = (0..4).map(|i| format!("in{i}")).collect();
        let inputs: HashMap<&str, i64> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i as i64 * 7 - 3))
            .collect();
        let r = g1.evaluate(&inputs).unwrap();
        assert!(!r.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = random_dag(1, 20, 3);
        let g2 = random_dag(2, 20, 3);
        assert_ne!(g1.nodes(), g2.nodes());
    }
}
