//! Value-checking programs: golden-run monitors and mined functional
//! invariants, evaluated identically by every execution engine.
//!
//! The resolution function only detects faults that collide on a
//! resolved signal — value corruption that never double-drives anything
//! stays silent. A [`CheckProgram`] closes that gap with two detector
//! families layered *outside* the model's semantics:
//!
//! * a **golden monitor** ([`MonitorTable`]): the per-delta value table
//!   of the clean run; any divergence in a mutant is flagged at its
//!   first `(step, phase, signal)`;
//! * **functional invariants** ([`Invariant`]): range, reachable-set and
//!   pairwise relation constraints mined from clean runs and re-asserted
//!   every delta cycle.
//!
//! The evaluation state machine ([`CheckEval`]) is the single source of
//! verdict truth: the interpreted kernel feeds it from the commit
//! observation hook, the compiled plan feeds it from its SoA value
//! columns, and both therefore agree byte-for-byte by construction.
//!
//! # Examples
//!
//! ```
//! use clockless_core::check::{check_signals, record_table, CheckProgram};
//! use clockless_core::model::fig1_model;
//!
//! let model = fig1_model(3, 4);
//! let signals = check_signals(&model);
//! let table = record_table(&model, &signals)?;
//! // A fig. 1 run quiesces after 1 + 6×7 deltas; each has one row.
//! assert_eq!(table.deltas, 43);
//! let program = CheckProgram {
//!     signals,
//!     monitor: Some(table),
//!     invariants: Vec::new(),
//! };
//! assert!(!program.is_empty());
//! # Ok::<(), clockless_core::check::CheckedError>(())
//! ```

use std::fmt;

use clockless_kernel::{KernelError, SignalId};

use crate::backend::{Backend, ExecOptions, ExecOutcome};
use crate::elaborate::ElaborateOptions;
use crate::model::RtModel;
use crate::phase::PhaseTime;
use crate::plan::{ExecPlan, PlanDelta};
use crate::run::RtSimulation;
use crate::value::Value;

/// What kind of resource a monitored signal is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// A register's output port.
    Register,
    /// One word of a memory (named `M[i]`).
    MemoryWord,
    /// A bus.
    Bus,
}

impl SignalKind {
    /// Lowercase label (`"register"` / `"memory word"` / `"bus"`).
    pub fn as_str(self) -> &'static str {
        match self {
            SignalKind::Register => "register",
            SignalKind::MemoryWord => "memory word",
            SignalKind::Bus => "bus",
        }
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One monitored signal, identified by resource name and kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckSignal {
    /// The resource name (`"R1"`, `"B2"`).
    pub name: String,
    /// Register output or bus.
    pub kind: SignalKind,
}

/// The monitorable signals of a model: every register output, then every
/// memory word, then every bus, all in declaration order. This ordering
/// is the canonical one — monitor tables and invariant indices refer to
/// it. Memory-free models keep the historical registers-then-buses list.
pub fn check_signals(model: &RtModel) -> Vec<CheckSignal> {
    let mut signals = Vec::with_capacity(model.registers().len() + model.buses().len());
    for r in model.registers() {
        signals.push(CheckSignal {
            name: r.name.clone(),
            kind: SignalKind::Register,
        });
    }
    for m in model.memories() {
        for i in 0..m.len {
            signals.push(CheckSignal {
                name: m.word_name(i),
                kind: SignalKind::MemoryWord,
            });
        }
    }
    for b in model.buses() {
        signals.push(CheckSignal {
            name: b.name.clone(),
            kind: SignalKind::Bus,
        });
    }
    signals
}

/// The golden run's per-delta value table, row-major:
/// `values[delta * width + i]` is signal `i` at the end of delta `delta`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorTable {
    /// How many delta cycles the golden run took.
    pub deltas: u64,
    /// `deltas × width` values (width = the program's signal count).
    pub values: Vec<Value>,
}

impl MonitorTable {
    /// Row for `delta`, clamped to the last recorded row (a quiesced run
    /// holds its final values forever).
    fn row(&self, width: usize, delta: u64) -> &[Value] {
        let d = delta.min(self.deltas.saturating_sub(1)) as usize;
        &self.values[d * width..(d + 1) * width]
    }
}

/// One functional invariant over the program's signals (indices into
/// [`CheckProgram::signals`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Invariant {
    /// The signal always holds a number in `[min, max]`.
    Range {
        /// Constrained signal.
        sig: usize,
        /// Inclusive lower bound.
        min: i64,
        /// Inclusive upper bound.
        max: i64,
    },
    /// The signal only ever holds one of these numbers (sorted).
    Reachable {
        /// Constrained signal.
        sig: usize,
        /// The reachable value set, ascending.
        values: Vec<i64>,
    },
    /// The two signals always hold the same value.
    Eq {
        /// Left-hand signal.
        a: usize,
        /// Right-hand signal.
        b: usize,
    },
    /// Both signals are numbers with `a <= b`.
    Le {
        /// Left-hand signal.
        a: usize,
        /// Right-hand signal.
        b: usize,
    },
    /// Both signals are numbers with `a - b == delta`.
    Offset {
        /// Left-hand signal.
        a: usize,
        /// Right-hand signal.
        b: usize,
        /// The constant difference.
        delta: i64,
    },
}

impl Invariant {
    /// The index of the signal a violation is attributed to.
    pub fn site(&self) -> usize {
        match *self {
            Invariant::Range { sig, .. } | Invariant::Reachable { sig, .. } => sig,
            Invariant::Eq { a, .. } | Invariant::Le { a, .. } | Invariant::Offset { a, .. } => a,
        }
    }

    /// Human-readable rule text, e.g. `` `R1 in [3, 7]` ``.
    pub fn render(&self, signals: &[CheckSignal]) -> String {
        let name = |i: usize| signals[i].name.as_str();
        match self {
            Invariant::Range { sig, min, max } => {
                format!("{} in [{}, {}]", name(*sig), min, max)
            }
            Invariant::Reachable { sig, values } => {
                let mut set = String::new();
                for (k, v) in values.iter().enumerate() {
                    if k > 0 {
                        set.push_str(", ");
                    }
                    let _ = fmt::Write::write_fmt(&mut set, format_args!("{v}"));
                }
                format!("{} in {{{}}}", name(*sig), set)
            }
            Invariant::Eq { a, b } => format!("{} == {}", name(*a), name(*b)),
            Invariant::Le { a, b } => format!("{} <= {}", name(*a), name(*b)),
            Invariant::Offset { a, b, delta } => {
                format!("{} - {} == {}", name(*a), name(*b), delta)
            }
        }
    }

    /// Evaluates the invariant against one value row; on violation
    /// returns the attributed signal index and its offending value.
    fn violated(&self, row: &[Value]) -> Option<(usize, Value)> {
        match self {
            Invariant::Range { sig, min, max } => match row[*sig] {
                Value::Num(v) if *min <= v && v <= *max => None,
                other => Some((*sig, other)),
            },
            Invariant::Reachable { sig, values } => match row[*sig] {
                Value::Num(v) if values.binary_search(&v).is_ok() => None,
                other => Some((*sig, other)),
            },
            Invariant::Eq { a, b } => {
                if row[*a] == row[*b] {
                    None
                } else {
                    Some((*a, row[*a]))
                }
            }
            Invariant::Le { a, b } => match (row[*a], row[*b]) {
                (Value::Num(x), Value::Num(y)) if x <= y => None,
                _ => Some((*a, row[*a])),
            },
            Invariant::Offset { a, b, delta } => match (row[*a], row[*b]) {
                (Value::Num(x), Value::Num(y)) if x.wrapping_sub(y) == *delta => None,
                _ => Some((*a, row[*a])),
            },
        }
    }
}

/// A complete checking program: the monitored signal list plus the
/// enabled detector families.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckProgram {
    /// Monitored signals; monitor rows and invariant indices refer to
    /// this list.
    pub signals: Vec<CheckSignal>,
    /// Golden-run monitor table, when golden checking is enabled.
    pub monitor: Option<MonitorTable>,
    /// Mined invariants, evaluated in order every delta cycle.
    pub invariants: Vec<Invariant>,
}

impl CheckProgram {
    /// The monitored signal count (the monitor table's row width).
    pub fn width(&self) -> usize {
        self.signals.len()
    }

    /// `true` when the program checks nothing.
    pub fn is_empty(&self) -> bool {
        self.monitor.is_none() && self.invariants.is_empty()
    }
}

/// Where in control-step time a delta cycle falls, as display text:
/// `"at initialization"` for delta 0, `"in step S phase P"` otherwise.
pub fn site_text(delta: u64) -> String {
    match PhaseTime::from_active_delta(delta) {
        None => "at initialization".to_string(),
        Some(pt) => format!("in step {} phase {}", pt.step, pt.phase),
    }
}

/// First divergence from the golden monitor table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorViolation {
    /// The diverging signal's name.
    pub signal: String,
    /// Register output or bus.
    pub kind: SignalKind,
    /// The delta cycle at which the divergence became visible.
    pub delta: u64,
    /// The golden run's value at that delta.
    pub expected: Value,
    /// The observed value.
    pub got: Value,
}

impl MonitorViolation {
    /// The violation's control-step site, `None` for initialization.
    pub fn site(&self) -> Option<PhaseTime> {
        PhaseTime::from_active_delta(self.delta)
    }
}

impl fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value monitor: {} `{}` read {} {}, golden run says {}",
            self.kind,
            self.signal,
            self.got,
            site_text(self.delta),
            self.expected
        )
    }
}

/// First violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The violated rule, rendered (`"R1 in [3, 7]"`).
    pub rule: String,
    /// The signal the violation is attributed to.
    pub signal: String,
    /// The delta cycle of the first violation.
    pub delta: u64,
    /// The offending value of `signal`.
    pub got: Value,
}

impl InvariantViolation {
    /// The violation's control-step site, `None` for initialization.
    pub fn site(&self) -> Option<PhaseTime> {
        PhaseTime::from_active_delta(self.delta)
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant `{}` violated: `{}` = {} {}",
            self.rule,
            self.signal,
            self.got,
            site_text(self.delta)
        )
    }
}

/// The verdict of one checked run: the first violation of each detector
/// family, or none.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// First divergence from the golden monitor, if any.
    pub monitor: Option<MonitorViolation>,
    /// First invariant violation, if any.
    pub invariant: Option<InvariantViolation>,
}

impl CheckReport {
    /// `true` when no detector fired.
    pub fn is_clean(&self) -> bool {
        self.monitor.is_none() && self.invariant.is_none()
    }
}

/// The checking state machine. Feed it the end-of-delta values of every
/// executed delta cycle in order via [`observe`](Self::observe), then
/// call [`finish`](Self::finish); it latches the *first* violation of
/// each detector family.
///
/// Runs shorter than the golden table are extended with their frozen
/// final values (a quiesced run holds them forever); runs longer than
/// the table are compared against the table's final row. Both engines
/// drive this same machine, so verdicts agree byte-for-byte.
#[derive(Debug)]
pub struct CheckEval<'p> {
    program: &'p CheckProgram,
    /// Deltas observed so far (== the next expected delta index).
    observed: u64,
    /// The most recent observed row.
    last: Vec<Value>,
    monitor: Option<MonitorViolation>,
    invariant: Option<InvariantViolation>,
}

impl<'p> CheckEval<'p> {
    /// A fresh evaluator for `program`.
    pub fn new(program: &'p CheckProgram) -> CheckEval<'p> {
        CheckEval {
            program,
            observed: 0,
            last: vec![Value::Disc; program.width()],
            monitor: None,
            invariant: None,
        }
    }

    /// Observes the end-of-delta values of delta cycle `delta` (must be
    /// called with consecutive deltas starting at 0). `get(i)` is the
    /// value of `program.signals[i]`.
    pub fn observe(&mut self, delta: u64, mut get: impl FnMut(usize) -> Value) {
        for i in 0..self.program.width() {
            self.last[i] = get(i);
        }
        self.check_monitor(delta);
        self.check_invariants(delta);
        self.observed = delta + 1;
    }

    fn check_monitor(&mut self, delta: u64) {
        if self.monitor.is_some() {
            return;
        }
        let Some(table) = &self.program.monitor else {
            return;
        };
        let row = table.row(self.program.width(), delta);
        for (i, (got, expected)) in self.last.iter().zip(row).enumerate() {
            if got != expected {
                self.monitor = Some(MonitorViolation {
                    signal: self.program.signals[i].name.clone(),
                    kind: self.program.signals[i].kind,
                    delta,
                    expected: *expected,
                    got: *got,
                });
                return;
            }
        }
    }

    fn check_invariants(&mut self, delta: u64) {
        if self.invariant.is_some() {
            return;
        }
        for inv in &self.program.invariants {
            if let Some((sig, got)) = inv.violated(&self.last) {
                self.invariant = Some(InvariantViolation {
                    rule: inv.render(&self.program.signals),
                    signal: self.program.signals[sig].name.clone(),
                    delta,
                    got,
                });
                return;
            }
        }
    }

    /// Finalizes the verdict. If the run was shorter than the golden
    /// table, the frozen final values are compared against the remaining
    /// golden rows (invariants need no extension — the frozen row was
    /// already checked at its last delta).
    pub fn finish(&mut self) -> CheckReport {
        if let Some(table) = &self.program.monitor {
            let mut d = self.observed;
            while self.monitor.is_none() && d < table.deltas {
                self.check_monitor(d);
                d += 1;
            }
        }
        CheckReport {
            monitor: self.monitor.clone(),
            invariant: self.invariant.clone(),
        }
    }
}

/// Error of a checked execution.
#[derive(Debug)]
pub enum CheckedError {
    /// The program references a signal the model does not have.
    Signals(String),
    /// The run itself failed.
    Kernel(KernelError),
}

impl fmt::Display for CheckedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckedError::Signals(msg) => write!(f, "check program: {msg}"),
            CheckedError::Kernel(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckedError {}

impl From<KernelError> for CheckedError {
    fn from(e: KernelError) -> CheckedError {
        CheckedError::Kernel(e)
    }
}

/// Maps each [`CheckSignal`] to its kernel [`SignalId`] in `sim`.
fn resolve_kernel_ids(
    sim: &RtSimulation,
    signals: &[CheckSignal],
) -> Result<Vec<SignalId>, String> {
    let model = sim.model();
    let layout = sim.layout();
    signals
        .iter()
        .map(|s| match s.kind {
            SignalKind::Register => model
                .register_by_name(&s.name)
                .map(|id| layout.reg_out[id.0 as usize])
                .ok_or_else(|| format!("unknown register `{}`", s.name)),
            SignalKind::MemoryWord => model
                .memories()
                .iter()
                .enumerate()
                .find_map(|(mi, m)| {
                    (0..m.len)
                        .find(|&i| m.word_name(i) == s.name)
                        .map(|i| layout.mem_word[mi][i as usize])
                })
                .ok_or_else(|| format!("unknown memory word `{}`", s.name)),
            SignalKind::Bus => model
                .bus_by_name(&s.name)
                .map(|id| layout.bus[id.0 as usize])
                .ok_or_else(|| format!("unknown bus `{}`", s.name)),
        })
        .collect()
}

/// An interpreter run with commit observation on the check signals.
struct ObservedRun {
    outcome: ExecOutcome,
    /// Executed delta cycles.
    deltas: u64,
    /// Initial values of the observed signals.
    inits: Vec<Value>,
    /// `(delta, signal index, value)` commits, chronological.
    log: Vec<(u64, usize, Value)>,
}

fn run_observed(
    model: &RtModel,
    signals: &[CheckSignal],
    options: &ExecOptions,
) -> Result<ObservedRun, CheckedError> {
    let elaborate = ElaborateOptions {
        trace: options.trace,
        ..Default::default()
    };
    let mut sim = RtSimulation::with_options(model, elaborate)?;
    let ids = resolve_kernel_ids(&sim, signals).map_err(CheckedError::Signals)?;
    let inits: Vec<Value> = ids.iter().map(|id| *sim.kernel().value(*id)).collect();
    sim.kernel_mut().observe_commits(&ids);
    if let Some(limit) = options.delta_limit {
        sim.set_delta_limit(limit);
    }
    let summary = match options.deadline {
        Some(deadline) => sim.run_to_completion_deadlined(deadline)?,
        None => sim.run_to_completion()?,
    };
    let log = sim
        .kernel()
        .commit_log()
        .iter()
        .map(|(delta, sid, value)| {
            let i = ids.iter().position(|id| id == sid).expect("observed id");
            (*delta, i, *value)
        })
        .collect();
    let deltas = summary.stats.delta_cycles;
    let commits = sim.register_commits();
    let vcd = sim.to_vcd();
    Ok(ObservedRun {
        outcome: ExecOutcome {
            summary,
            commits,
            vcd,
        },
        deltas,
        inits,
        log,
    })
}

/// Records the per-delta value table of a clean interpreter run of
/// `model` over `signals` — the golden monitor table, and the data the
/// invariant miner learns from. Both backends produce byte-identical
/// per-delta values, so one canonical recording serves either engine.
///
/// # Errors
///
/// [`CheckedError::Signals`] for unknown signals, or the run's own
/// kernel error.
pub fn record_table(
    model: &RtModel,
    signals: &[CheckSignal],
) -> Result<MonitorTable, CheckedError> {
    let run = run_observed(model, signals, &ExecOptions::default())?;
    let width = signals.len();
    let mut values = Vec::with_capacity(run.deltas as usize * width);
    let mut cur = run.inits.clone();
    let mut k = 0;
    for d in 0..run.deltas {
        while k < run.log.len() && run.log[k].0 == d {
            cur[run.log[k].1] = run.log[k].2;
            k += 1;
        }
        values.extend_from_slice(&cur);
    }
    Ok(MonitorTable {
        deltas: run.deltas,
        values,
    })
}

/// Runs `model` on `backend` with `program`'s checkers active, returning
/// the normal observable outcome plus the check verdict.
///
/// The interpreted engine feeds the evaluator from the kernel's commit
/// observation hook; the compiled engine evaluates its SoA value columns
/// through the identity batch path. Verdicts are byte-identical.
///
/// # Errors
///
/// [`CheckedError::Signals`] for unknown signals, or the run's own
/// kernel error (budget overflow aborts the run before any verdict).
pub fn execute_checked(
    model: &RtModel,
    backend: Backend,
    options: &ExecOptions,
    program: &CheckProgram,
) -> Result<(ExecOutcome, CheckReport), CheckedError> {
    match backend {
        Backend::Interpreted => {
            let run = run_observed(model, &program.signals, options)?;
            let mut eval = CheckEval::new(program);
            let mut cur = run.inits.clone();
            let mut k = 0;
            for d in 0..run.deltas {
                while k < run.log.len() && run.log[k].0 == d {
                    cur[run.log[k].1] = run.log[k].2;
                    k += 1;
                }
                eval.observe(d, |i| cur[i]);
            }
            Ok((run.outcome, eval.finish()))
        }
        Backend::Compiled => {
            let plan = ExecPlan::lower(model);
            let checks = plan
                .resolve_checks(program)
                .map_err(CheckedError::Signals)?;
            let outcome = plan.execute(options)?;
            let report = plan
                .execute_batch_checked(&[PlanDelta::default()], options, &checks)?
                .into_iter()
                .next()
                .and_then(|col| col.check)
                .unwrap_or_default();
            Ok((outcome, report))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;

    fn fig1_program(monitor: bool) -> (RtModel, CheckProgram) {
        let model = fig1_model(3, 4);
        let signals = check_signals(&model);
        let table = record_table(&model, &signals).expect("records");
        let program = CheckProgram {
            signals,
            monitor: monitor.then_some(table),
            invariants: Vec::new(),
        };
        (model, program)
    }

    #[test]
    fn check_signals_lists_registers_then_buses() {
        let model = fig1_model(3, 4);
        let signals = check_signals(&model);
        let names: Vec<&str> = signals.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["R1", "R2", "B1", "B2"]);
        assert_eq!(signals[0].kind, SignalKind::Register);
        assert_eq!(signals[2].kind, SignalKind::Bus);
    }

    #[test]
    fn recorded_table_tracks_the_commit() {
        let (_, program) = fig1_program(true);
        let table = program.monitor.as_ref().unwrap();
        let w = program.width();
        assert_eq!(table.deltas, 43);
        // Delta 0: initial values.
        assert_eq!(table.row(w, 0)[0], Value::Num(3));
        assert_eq!(table.row(w, 0)[1], Value::Num(4));
        // Final row: R1 committed 7.
        assert_eq!(table.row(w, 42)[0], Value::Num(7));
        // Past-the-end rows clamp to the final one.
        assert_eq!(table.row(w, 99)[0], Value::Num(7));
    }

    #[test]
    fn clean_run_is_clean_on_both_backends() {
        let (model, program) = fig1_program(true);
        for backend in [Backend::Interpreted, Backend::Compiled] {
            let (outcome, report) =
                execute_checked(&model, backend, &ExecOptions::traced(), &program).expect("runs");
            assert_eq!(outcome.summary.register("R1"), Some(Value::Num(7)));
            assert!(report.is_clean(), "{backend}: {report:?}");
        }
    }

    #[test]
    fn corrupted_init_diverges_at_initialization_identically() {
        let (_, program) = fig1_program(true);
        let mutant = fig1_model(5, 4);
        let mut reports = Vec::new();
        for backend in [Backend::Interpreted, Backend::Compiled] {
            let (_, report) =
                execute_checked(&mutant, backend, &ExecOptions::default(), &program).expect("runs");
            let v = report.monitor.clone().expect("diverges");
            assert_eq!(v.signal, "R1");
            assert_eq!(v.delta, 0);
            assert_eq!(v.expected, Value::Num(3));
            assert_eq!(v.got, Value::Num(5));
            assert!(v.to_string().contains("at initialization"), "{v}");
            reports.push(report);
        }
        assert_eq!(reports[0], reports[1]);
    }

    #[test]
    fn invariants_latch_the_first_violation_site() {
        let (model, _) = fig1_program(false);
        let signals = check_signals(&model);
        let program = CheckProgram {
            signals,
            monitor: None,
            invariants: vec![
                Invariant::Range {
                    sig: 0,
                    min: 3,
                    max: 6, // the commit of 7 violates this
                },
                Invariant::Reachable {
                    sig: 1,
                    values: vec![4],
                },
            ],
        };
        for backend in [Backend::Interpreted, Backend::Compiled] {
            let (_, report) =
                execute_checked(&model, backend, &ExecOptions::default(), &program).expect("runs");
            let v = report.invariant.clone().expect("fires");
            assert_eq!(v.signal, "R1");
            assert_eq!(v.rule, "R1 in [3, 6]");
            assert_eq!(v.got, Value::Num(7));
            // R1's output changes in the delta after cr of step 6.
            assert_eq!(site_text(v.delta), "in step 7 phase ra");
        }
    }

    #[test]
    fn eval_extends_short_runs_with_frozen_values() {
        // Golden table: two deltas, signal goes 1 -> 2. A "run" observing
        // only delta 0 with value 1 must still diverge at delta 1.
        let program = CheckProgram {
            signals: vec![CheckSignal {
                name: "X".into(),
                kind: SignalKind::Register,
            }],
            monitor: Some(MonitorTable {
                deltas: 2,
                values: vec![Value::Num(1), Value::Num(2)],
            }),
            invariants: Vec::new(),
        };
        let mut eval = CheckEval::new(&program);
        eval.observe(0, |_| Value::Num(1));
        let report = eval.finish();
        let v = report.monitor.expect("frozen value diverges at delta 1");
        assert_eq!(v.delta, 1);
        assert_eq!(v.expected, Value::Num(2));
        assert_eq!(v.got, Value::Num(1));
    }

    #[test]
    fn unknown_signals_are_a_typed_error() {
        let model = fig1_model(1, 2);
        let program = CheckProgram {
            signals: vec![CheckSignal {
                name: "NOPE".into(),
                kind: SignalKind::Register,
            }],
            monitor: None,
            invariants: vec![Invariant::Range {
                sig: 0,
                min: 0,
                max: 1,
            }],
        };
        for backend in [Backend::Interpreted, Backend::Compiled] {
            let err = execute_checked(&model, backend, &ExecOptions::default(), &program)
                .expect_err("unknown signal");
            assert!(matches!(err, CheckedError::Signals(_)), "{err}");
            assert!(err.to_string().contains("NOPE"), "{err}");
        }
    }
}
