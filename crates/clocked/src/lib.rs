//! # clockless-clocked — from control steps to clock signals, and the
//! handshake baseline
//!
//! The clock-free RT models of `clockless-core` sit *above* conventional
//! clocked RTL: §4 of the DATE 1998 paper notes that "the transformation
//! into a usual synthesizable RT description based on clock signals can be
//! performed automatically". This crate implements that succeeding
//! synthesis step and the comparison styles around it:
//!
//! * [`translate`] — compiles transfer tuples into per-step routing tables
//!   and rejects static resource conflicts; [`ClockScheme`] picks how many
//!   clock cycles implement one control step (two low-level architectures,
//!   demonstrating the paper's "several ways to implement control steps").
//! * [`sim`] — executes the clocked design on the same kernel, now with a
//!   real clock and physical time.
//! * [`handshake`] — the expensive alternative the paper contrasts with:
//!   the same schedule executed by agents synchronizing via 4-phase
//!   request/acknowledge handshakes in delta time.
//! * [`equiv`] — side-by-side equivalence checks between the styles.
//! * [`vhdl`] — emission of the translated design as synthesizable
//!   VHDL-1993 (the §4 hand-off artifact).
//!
//! ## Example
//!
//! ```
//! use clockless_core::model::fig1_model;
//! use clockless_clocked::{check_clocked_equivalence, ClockScheme};
//!
//! let model = fig1_model(3, 4);
//! let report = check_clocked_equivalence(&model, ClockScheme::default())?;
//! assert!(report.equivalent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod equiv;
pub mod handshake;
pub mod sim;
pub mod translate;
pub mod vhdl;

pub use equiv::{
    check_clocked_equivalence, check_handshake_equivalence, EquivError, EquivalenceReport, Mismatch,
};
pub use handshake::HandshakeSim;
pub use sim::{ClockedCommit, ClockedSimulation};
pub use translate::{BusSource, ClockScheme, ClockedDesign, RoutingTables, TranslateError};
pub use vhdl::emit_clocked_vhdl;
