//! Writes `BENCH_fuzz.json` at the repository root: throughput of the
//! seeded differential fuzz campaign (`clockless_verify::fuzz`) at
//! several zoo sizes. Every campaign must come back clean — a
//! divergence here is a real cross-layer bug, so the bench doubles as
//! the acceptance gate for the ≥1000-model zero-divergence claim.
//!
//! Per the workspace convention, counters (`checked`, `hls_models`,
//! `guarded_models`, `memory_models`, `array_models`,
//! `clocked_checked`, `divergences`, `deterministic`) are
//! machine-independent; `wall_ns` and the derived `models_per_sec` are
//! machine-local. The `deterministic` field asserts that re-running the
//! campaign at the same seed yields a byte-identical JSON report.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use clockless_verify::run_fuzz;

/// One (seed, count) measurement.
struct Row {
    seed: u64,
    count: usize,
    hls_models: usize,
    guarded_models: usize,
    memory_models: usize,
    array_models: usize,
    clocked_checked: usize,
    divergences: usize,
    wall_ns: u64,
    models_per_sec: f64,
    deterministic: bool,
}

fn main() {
    let scales: [(u64, usize); 3] = [(0xC10C_1E55, 250), (0xC10C_1E55, 1000), (0xF00D, 2000)];

    let mut rows: Vec<Row> = Vec::new();
    for (seed, count) in scales {
        let reference = run_fuzz(seed, count);
        assert!(
            reference.clean(),
            "seed {seed} count {count}: fuzz campaign diverged:\n{reference}"
        );
        let deterministic = run_fuzz(seed, count).to_json() == reference.to_json();
        assert!(
            deterministic,
            "seed {seed} count {count}: report not reproducible"
        );

        // Best-of-3 wall time.
        let mut wall_ns = u64::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            let report = run_fuzz(seed, count);
            let ns = t.elapsed().as_nanos() as u64;
            std::hint::black_box(report);
            wall_ns = wall_ns.min(ns);
        }
        let models_per_sec = count as f64 / (wall_ns as f64 / 1e9);
        eprintln!(
            "seed={seed:#x} count={count:<5} hls={} guarded={} mem={} arr={} clocked={} \
             wall={:.1} ms ({:.0} models/s)",
            reference.hls_models,
            reference.guarded_models,
            reference.memory_models,
            reference.array_models,
            reference.clocked_checked,
            wall_ns as f64 / 1e6,
            models_per_sec
        );
        rows.push(Row {
            seed,
            count,
            hls_models: reference.hls_models,
            guarded_models: reference.guarded_models,
            memory_models: reference.memory_models,
            array_models: reference.array_models,
            clocked_checked: reference.clocked_checked,
            divergences: reference.divergence_count,
            wall_ns,
            models_per_sec,
            deterministic,
        });
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench fuzz_zoo\",\n",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"seed\": {}, \"count\": {}, \"hls_models\": {}, \
             \"guarded_models\": {}, \"memory_models\": {}, \"array_models\": {}, \
             \"clocked_checked\": {}, \"divergences\": {}, \"wall_ns\": {}, \
             \"models_per_sec\": {:.0}, \"deterministic\": {}}}{}",
            r.seed,
            r.count,
            r.hls_models,
            r.guarded_models,
            r.memory_models,
            r.array_models,
            r.clocked_checked,
            r.divergences,
            r.wall_ns,
            r.models_per_sec,
            r.deterministic,
            comma
        );
    }
    out.push_str("  ]\n}\n");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fuzz.json");
    std::fs::write(&path, out).expect("writes BENCH_fuzz.json");
    eprintln!(
        "fuzz zoo: {} rows written to {}",
        rows.len(),
        path.canonicalize().unwrap_or(path).display()
    );
}
