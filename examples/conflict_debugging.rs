//! Locating resource conflicts the paper's way (§2.7).
//!
//! "Simulation results allow easily to locate design errors leading to
//! resource conflicts: it would result to ILLEGAL values of resolved
//! signals in specific simulation cycles associated with a specific phase
//! of a specific control step." This example injects a double-booked bus
//! into an otherwise correct schedule, shows the dynamic conflict report
//! pinpointing step and phase, cross-checks it against the static
//! analysis, and dumps a VCD waveform for inspection.
//!
//! Run with: `cargo run --example conflict_debugging`

use clockless::core::prelude::*;
use clockless::verify::cross_check;

fn build_buggy_model() -> Result<RtModel, ModelError> {
    let mut m = RtModel::new("buggy", 8);
    m.add_register_init("A", Value::Num(10))?;
    m.add_register_init("B", Value::Num(20))?;
    m.add_register_init("C", Value::Num(30))?;
    m.add_register("T1")?;
    m.add_register("T2")?;
    m.add_bus("BusA")?;
    m.add_bus("BusB")?;
    m.add_bus("BusC")?;
    m.add_module(ModuleDecl::single(
        "ADD1",
        Op::Add,
        ModuleTiming::Pipelined { latency: 1 },
    ))?;
    m.add_module(ModuleDecl::single(
        "ADD2",
        Op::Add,
        ModuleTiming::Pipelined { latency: 1 },
    ))?;
    // Correct transfer: T1 := A + B at steps 3/4.
    m.add_transfer(
        TransferTuple::new(3, "ADD1")
            .src_a("A", "BusA")
            .src_b("B", "BusB")
            .write(4, "BusA", "T1"),
    )?;
    // The bug: this transfer also routes its first operand over BusA in
    // step 3 — a scheduling error a designer would make by double-booking
    // the bus.
    m.add_transfer(
        TransferTuple::new(3, "ADD2")
            .src_a("C", "BusA")
            .src_b("B", "BusC")
            .write(4, "BusC", "T2"),
    )?;
    Ok(m)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = build_buggy_model()?;

    // Dynamic detection: run traced and read the conflict report.
    let mut sim = RtSimulation::traced(&model)?;
    let summary = sim.run_to_completion()?;
    let report = summary.conflicts.expect("traced run records conflicts");
    println!("dynamic conflict report:\n{report}");
    let first = report.first().expect("the bug is detected");
    assert_eq!(first.name, "BusA");
    assert_eq!(first.visible_at, PhaseTime::new(3, Phase::Rb));
    println!(
        "root cause localized: bus `{}` conflicts, visible at {} (driven at ra).",
        first.name, first.visible_at
    );

    // The poison propagates: both destination registers are ILLEGAL.
    println!(
        "\npoisoned registers after the run: {:?}",
        sim.poisoned_registers()
    );

    // Static cross-check: the scheduler-level analysis predicts the same
    // collision before any simulation.
    let cc = cross_check(&model)?;
    println!(
        "\nstatic analysis predicted {} conflict(s):",
        cc.predicted.len()
    );
    for p in &cc.predicted {
        println!("  {p}  (will be visible at {})", p.visible_at());
    }
    assert!(cc.all_confirmed(), "every prediction must be confirmed");
    println!(
        "all {} prediction(s) confirmed dynamically; {} additional dynamic site(s) are downstream propagation.",
        cc.confirmed.len(),
        cc.dynamic_only.len()
    );

    // Waveform export: delta cycles become VCD timesteps.
    let vcd = sim.to_vcd().expect("traced run");
    let path = std::env::temp_dir().join("clockless_conflict.vcd");
    std::fs::write(&path, &vcd)?;
    println!(
        "\nwaveform with the ILLEGAL value written to {}",
        path.display()
    );
    println!("OK: the conflict was located to an exact control step and phase.");
    Ok(())
}
