//! The microinstruction format and opcode maps.
//!
//! §3 extracts the chip's register transfers "from the microcode for
//! computing the IKS": each microprogram row carries an address, the
//! cycle (control step), two opcodes and index fields —
//!
//! ```text
//! addr  cycle  opc1  opc2  m  J  R1  M/R
//! ```
//!
//! — and **code maps** expand `opc1` into bus/direct-link routing and
//! `opc2` into the operations the adders and the multiplier perform that
//! cycle. The full tables live in the Leung & Shanblatt book; this module
//! reconstructs the *format* faithfully (see DESIGN.md): opcode maps are
//! tables of [`MicroOpTemplate`]s whose register references may be
//! indexed by the instruction's `J`/`R1`/`M/R` fields.

use std::collections::BTreeMap;
use std::fmt;

use clockless_core::{Op, Step};

/// An index field of the microinstruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// The `J` field (joint-register index).
    J,
    /// The `R1` field (scratch-register index).
    R1,
    /// The `M/R` field (constant/parameter-register index).
    Mr,
}

/// A register reference in an opcode-map entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// A fixed register (`X`, `Y`, `Z`, `P`, …).
    Named(String),
    /// A register-file entry selected by an instruction field
    /// (`M[mr]`, `J[j]`, `R[r1]`).
    Indexed {
        /// File prefix (`M`, `R`, `J`).
        file: String,
        /// The field providing the index.
        field: Field,
    },
}

impl RegRef {
    /// Convenience constructor for a fixed register.
    pub fn named(name: impl Into<String>) -> RegRef {
        RegRef::Named(name.into())
    }

    /// Convenience constructor for a field-indexed file entry.
    pub fn indexed(file: impl Into<String>, field: Field) -> RegRef {
        RegRef::Indexed {
            file: file.into(),
            field,
        }
    }
}

/// Which module operand port a route feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandPort {
    /// The first (left) operand.
    In1,
    /// The second (right) operand.
    In2,
}

/// One element of an opcode-map entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MicroOpTemplate {
    /// Route a register over a bus into a module operand port (the
    /// instruction's cycle, `ra`/`rb` phases).
    Operand {
        /// Source register.
        src: RegRef,
        /// Carrying bus (a shared bus or a direct link).
        bus: String,
        /// Target module.
        module: String,
        /// Target port.
        port: OperandPort,
    },
    /// Select the operation a module performs this cycle.
    Operation {
        /// The module.
        module: String,
        /// The operation.
        op: Op,
    },
    /// Route a module's (now ready) result over a bus into a register
    /// (the instruction's cycle, `wa`/`wb` phases).
    Result {
        /// Source module.
        module: String,
        /// Carrying bus.
        bus: String,
        /// Destination register.
        dst: RegRef,
    },
}

/// The two code maps: `opc1` (routing) and `opc2` (operations).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpcodeMaps {
    /// Routing codes.
    pub opc1: BTreeMap<u8, Vec<MicroOpTemplate>>,
    /// Operation codes.
    pub opc2: BTreeMap<u8, Vec<MicroOpTemplate>>,
}

/// One microinstruction: the paper's row format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroInstruction {
    /// Microprogram store address.
    pub addr: u32,
    /// The control step ("cycle") this instruction configures.
    pub step: Step,
    /// Routing opcode.
    pub opc1: u8,
    /// Operation opcode.
    pub opc2: u8,
    /// `J` index field.
    pub j: u8,
    /// `R1` index field.
    pub r1: u8,
    /// `M/R` index field.
    pub mr: u8,
}

/// A decoded micro-operation with concrete register names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroOp {
    /// Route `src` over `bus` into `module`'s `port`.
    Operand {
        /// Concrete source register name.
        src: String,
        /// Carrying bus.
        bus: String,
        /// Target module.
        module: String,
        /// Target port.
        port: OperandPort,
    },
    /// `module` performs `op` this cycle.
    Operation {
        /// The module.
        module: String,
        /// The operation.
        op: Op,
    },
    /// Route `module`'s result over `bus` into `dst`.
    Result {
        /// Source module.
        module: String,
        /// Carrying bus.
        bus: String,
        /// Concrete destination register name.
        dst: String,
    },
}

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MicrocodeError {
    /// An instruction used an `opc1` code missing from the map.
    UnknownOpc1 {
        /// The code.
        code: u8,
        /// The instruction's address.
        addr: u32,
    },
    /// An instruction used an `opc2` code missing from the map.
    UnknownOpc2 {
        /// The code.
        code: u8,
        /// The instruction's address.
        addr: u32,
    },
}

impl fmt::Display for MicrocodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicrocodeError::UnknownOpc1 { code, addr } => {
                write!(f, "address {addr}: opc1 code {code} not in the code map")
            }
            MicrocodeError::UnknownOpc2 { code, addr } => {
                write!(f, "address {addr}: opc2 code {code} not in the code map")
            }
        }
    }
}

impl std::error::Error for MicrocodeError {}

impl MicroInstruction {
    /// Value of an index field.
    pub fn field(&self, f: Field) -> u8 {
        match f {
            Field::J => self.j,
            Field::R1 => self.r1,
            Field::Mr => self.mr,
        }
    }

    /// Resolves a register reference against this instruction's fields.
    pub fn resolve(&self, r: &RegRef) -> String {
        match r {
            RegRef::Named(n) => n.clone(),
            RegRef::Indexed { file, field } => format!("{file}{}", self.field(*field)),
        }
    }

    /// Decodes the instruction against the code maps into concrete
    /// micro-operations (the paper's "code maps exist for opc1 and
    /// opc2").
    ///
    /// # Errors
    ///
    /// [`MicrocodeError`] for codes absent from the maps.
    pub fn decode(&self, maps: &OpcodeMaps) -> Result<Vec<MicroOp>, MicrocodeError> {
        let opc1 = maps
            .opc1
            .get(&self.opc1)
            .ok_or(MicrocodeError::UnknownOpc1 {
                code: self.opc1,
                addr: self.addr,
            })?;
        let opc2 = maps
            .opc2
            .get(&self.opc2)
            .ok_or(MicrocodeError::UnknownOpc2 {
                code: self.opc2,
                addr: self.addr,
            })?;
        let mut out = Vec::with_capacity(opc1.len() + opc2.len());
        for t in opc1.iter().chain(opc2.iter()) {
            out.push(match t {
                MicroOpTemplate::Operand {
                    src,
                    bus,
                    module,
                    port,
                } => MicroOp::Operand {
                    src: self.resolve(src),
                    bus: bus.clone(),
                    module: module.clone(),
                    port: *port,
                },
                MicroOpTemplate::Operation { module, op } => MicroOp::Operation {
                    module: module.clone(),
                    op: *op,
                },
                MicroOpTemplate::Result { module, bus, dst } => MicroOp::Result {
                    module: module.clone(),
                    bus: bus.clone(),
                    dst: self.resolve(dst),
                },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstructs the flavour of the paper's microprogram-address-7
    /// example: `opc1 = 20` routes `J[j]` over `BusA` into the Y-adder
    /// and `Y` over a direct link into the X-adder; `opc2 = 2` makes the
    /// X-adder shift and the Y-adder pass — the shape of one CORDIC
    /// iteration step run on the chip's adders.
    fn paper_style_maps() -> OpcodeMaps {
        let mut maps = OpcodeMaps::default();
        maps.opc1.insert(
            20,
            vec![
                MicroOpTemplate::Operand {
                    src: RegRef::indexed("J", Field::J),
                    bus: "BusA".into(),
                    module: "YADD".into(),
                    port: OperandPort::In2,
                },
                MicroOpTemplate::Operand {
                    src: RegRef::named("Y"),
                    bus: "LXA".into(), // a direct link
                    module: "XADD".into(),
                    port: OperandPort::In1,
                },
            ],
        );
        maps.opc2.insert(
            2,
            vec![
                MicroOpTemplate::Operation {
                    module: "XADD".into(),
                    op: Op::Shr,
                },
                MicroOpTemplate::Operation {
                    module: "YADD".into(),
                    op: Op::PassB,
                },
            ],
        );
        maps
    }

    #[test]
    fn addr7_style_decode() {
        // The paper's row: addr 7, with J field selecting J[6].
        let instr = MicroInstruction {
            addr: 7,
            step: 1,
            opc1: 20,
            opc2: 2,
            j: 6,
            r1: 0,
            mr: 0,
        };
        let ops = instr.decode(&paper_style_maps()).unwrap();
        assert_eq!(ops.len(), 4);
        // The paper derives the transfers (J[6],BusA,…,1) and (Y,direct,…,1).
        assert_eq!(
            ops[0],
            MicroOp::Operand {
                src: "J6".into(),
                bus: "BusA".into(),
                module: "YADD".into(),
                port: OperandPort::In2,
            }
        );
        assert_eq!(
            ops[1],
            MicroOp::Operand {
                src: "Y".into(),
                bus: "LXA".into(),
                module: "XADD".into(),
                port: OperandPort::In1,
            }
        );
        assert!(matches!(
            &ops[2],
            MicroOp::Operation { module, op: Op::Shr } if module == "XADD"
        ));
    }

    #[test]
    fn unknown_codes_are_errors() {
        let maps = paper_style_maps();
        let mut instr = MicroInstruction {
            addr: 3,
            step: 1,
            opc1: 99,
            opc2: 2,
            j: 0,
            r1: 0,
            mr: 0,
        };
        assert_eq!(
            instr.decode(&maps),
            Err(MicrocodeError::UnknownOpc1 { code: 99, addr: 3 })
        );
        instr.opc1 = 20;
        instr.opc2 = 42;
        assert_eq!(
            instr.decode(&maps),
            Err(MicrocodeError::UnknownOpc2 { code: 42, addr: 3 })
        );
    }

    #[test]
    fn field_resolution() {
        let instr = MicroInstruction {
            addr: 0,
            step: 1,
            opc1: 0,
            opc2: 0,
            j: 2,
            r1: 3,
            mr: 5,
        };
        assert_eq!(instr.resolve(&RegRef::indexed("M", Field::Mr)), "M5");
        assert_eq!(instr.resolve(&RegRef::indexed("R", Field::R1)), "R3");
        assert_eq!(instr.resolve(&RegRef::indexed("J", Field::J)), "J2");
        assert_eq!(instr.resolve(&RegRef::named("P")), "P");
    }
}
