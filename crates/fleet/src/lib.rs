//! # clockless-fleet — deterministic parallel batch runs
//!
//! The paper's central cost claim — one control step of a clock-free RT
//! model is exactly six delta cycles — makes single runs cheap, and cheap
//! single runs make *sweeps* attractive: many schedule candidates, many
//! stimuli, many microcode variants, all simulated side by side. This
//! crate is the batch engine for such sweeps.
//!
//! A [`BatchSpec`] names N independent jobs (models from `.rtl` files,
//! high-level-synthesis output, or IKS chip builders, each optionally
//! re-parameterized with a `CS_MAX` override and register-init stimulus).
//! [`run_batch`] resolves every job to a model once, then submits the
//! jobs to the generic job-queue executor in [`executor`] — a pool of
//! `std::thread` workers pulling from a shared queue and emitting each
//! result on a channel the moment it completes (the same executor the
//! `clockless-serve` daemon streams NDJSON responses from).
//! Every job runs on its **own, fully isolated kernel instance** — the
//! kernel holds no shared mutable state (see the isolation test in
//! `clockless-kernel`), so results are bit-identical and identically
//! ordered no matter how many workers run, which the test suite asserts
//! by comparing 1-worker and N-worker reports byte for byte.
//!
//! Results aggregate into a [`FleetReport`]: per-job outcomes (kernel
//! counters, final registers, conflict diagnoses, wall time) plus merged
//! totals via [`SimStats::merge`](clockless_kernel::SimStats::merge),
//! JSON-serializable with the same hand-rolled writer style as the rest
//! of the workspace (no external crates; tier-1 stays offline).
//!
//! The engine is **fault-tolerant by default**: a job that fails to
//! build, errors, panics, or blows a configured delta/wall budget is
//! retried up to a bound and then *quarantined* as a
//! [`JobOutcome::Failed`] row while the rest of the batch completes —
//! the deterministic JSON (including the quarantine section) stays
//! byte-identical at any worker count. [`run_batch_with`] takes a
//! [`FleetConfig`] for budgets, retry bounds, and the legacy fail-fast
//! mode.
//!
//! ## Example
//!
//! ```
//! use clockless_core::model::fig1_model;
//! use clockless_core::Value;
//! use clockless_fleet::{run_batch, BatchSpec, JobSource, JobSpec};
//!
//! // Sweep the Fig. 1 adder over three stimuli.
//! let jobs = (0..3)
//!     .map(|i| JobSpec::new(format!("fig1_{i}"), JobSource::Model(Box::new(fig1_model(i, 10)))))
//!     .collect();
//! let report = run_batch(&BatchSpec { jobs }, 2)?;
//!
//! // Jobs come back in spec order regardless of worker count.
//! assert_eq!(report.jobs.len(), 3);
//! assert_eq!(report.failed_jobs(), 0);
//! assert_eq!(report.job("fig1_2").unwrap().register("R1"), Some(Value::Num(12)));
//! // Totals merge every job's kernel counters.
//! assert_eq!(report.totals.delta_cycles, 3 * 43);
//! # Ok::<(), clockless_fleet::FleetError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod executor;
pub mod report;
pub mod spec;

pub use engine::{run_batch, run_batch_with, FleetConfig};
pub use executor::{
    classify_kernel_error, execute_job, Emission, JobExecutor, ResolvedJob, ThreadPool, WorkFn,
};
pub use report::{FailureKind, FleetReport, JobFailure, JobOutcome, JobResult};
pub use spec::{BatchSpec, ChaosProbe, FleetError, HlsWorkload, JobSource, JobSpec};
