//! Mined functional invariants: learning value laws from the clean run
//! and carrying them in a deterministic JSON artifact.
//!
//! Golden monitors ([`crate::monitor`]) compare a mutant against the one
//! recorded trajectory; invariants generalize it into *laws* that hold
//! at every delta of the clean run and are cheap to re-assert anywhere:
//!
//! * **Range** — each register stays inside its observed `[min, max]`.
//! * **Reachable** — registers with small domains (≤
//!   [`REACHABLE_MAX`] distinct numbers) only ever hold observed values.
//! * **Relations** — for each register pair, `a == b`, constant offset
//!   `a - b == k`, or `a <= b`, whichever held throughout.
//!
//! Mining is purely syntactic over the recorded
//! [`MonitorTable`]: registers
//! whose trajectory is all-numeric contribute, in declaration order, so
//! the mined rule list — and the rendered artifact — is byte-stable for
//! a given model. [`render_artifact`] / [`parse_artifact`] round-trip
//! the rules through the workspace's hand-rolled JSON (no external
//! crates), powering `clockless mine` and `clockless run --check`.
//!
//! # Examples
//!
//! ```
//! use clockless_core::model::fig1_model;
//! use clockless_verify::invariants::{mine_artifact, parse_artifact};
//!
//! let model = fig1_model(3, 4);
//! let artifact = mine_artifact(&model)?;
//! let (name, program) = parse_artifact(&artifact)?;
//! assert_eq!(name, "fig1_example");
//! assert!(!program.invariants.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::BTreeSet;
use std::fmt::Write as _;

use clockless_core::check::{
    check_signals, record_table, CheckProgram, CheckSignal, CheckedError, Invariant, MonitorTable,
    SignalKind,
};
use clockless_core::json::{escape, Json};
use clockless_core::model::RtModel;
use clockless_core::value::Value;

/// Largest distinct-value count for which a `Reachable` set is mined.
pub const REACHABLE_MAX: usize = 16;

/// Mines the invariant list from a recorded clean-run table.
///
/// Only registers whose whole trajectory is numeric participate (bus
/// trajectories spend most deltas disconnected and carry no stable
/// law). Emission order is canonical: per-register rules in declaration
/// order (`Range`, then `Reachable` when the domain is small), then
/// pair relations for `i < j` (`Eq`, else `Offset`, else `Le` in
/// whichever direction held).
pub fn mine_invariants(signals: &[CheckSignal], table: &MonitorTable) -> Vec<Invariant> {
    let w = signals.len();
    let deltas = table.deltas as usize;
    if w == 0 || deltas == 0 {
        return Vec::new();
    }
    // All-numeric register trajectories, by program signal index.
    let mut numeric: Vec<(usize, Vec<i64>)> = Vec::new();
    for (i, sig) in signals.iter().enumerate() {
        if sig.kind != SignalKind::Register {
            continue;
        }
        let column: Option<Vec<i64>> = (0..deltas)
            .map(|d| match table.values[d * w + i] {
                Value::Num(v) => Some(v),
                _ => None,
            })
            .collect();
        if let Some(column) = column {
            numeric.push((i, column));
        }
    }

    let mut rules = Vec::new();
    for (sig, column) in &numeric {
        let min = *column.iter().min().expect("non-empty trajectory");
        let max = *column.iter().max().expect("non-empty trajectory");
        rules.push(Invariant::Range {
            sig: *sig,
            min,
            max,
        });
        let distinct: BTreeSet<i64> = column.iter().copied().collect();
        if distinct.len() <= REACHABLE_MAX {
            rules.push(Invariant::Reachable {
                sig: *sig,
                values: distinct.into_iter().collect(),
            });
        }
    }
    for (p, (a, xs)) in numeric.iter().enumerate() {
        for (b, ys) in numeric.iter().skip(p + 1) {
            let pairs = || xs.iter().copied().zip(ys.iter().copied());
            if pairs().all(|(x, y)| x == y) {
                rules.push(Invariant::Eq { a: *a, b: *b });
            } else if pairs().all(|(x, y)| x.wrapping_sub(y) == xs[0].wrapping_sub(ys[0])) {
                rules.push(Invariant::Offset {
                    a: *a,
                    b: *b,
                    delta: xs[0].wrapping_sub(ys[0]),
                });
            } else if pairs().all(|(x, y)| x <= y) {
                rules.push(Invariant::Le { a: *a, b: *b });
            } else if pairs().all(|(x, y)| y <= x) {
                rules.push(Invariant::Le { a: *b, b: *a });
            }
        }
    }
    rules
}

/// Records the clean run and mines a monitor-free invariant program.
///
/// # Errors
///
/// The clean run's own failure (see
/// [`record_table`]).
pub fn mine_program(model: &RtModel) -> Result<CheckProgram, CheckedError> {
    let signals = check_signals(model);
    let table = record_table(model, &signals)?;
    let invariants = mine_invariants(&signals, &table);
    Ok(CheckProgram {
        signals,
        monitor: None,
        invariants,
    })
}

/// Records, mines and renders the invariant artifact for `model` in one
/// step — the `clockless mine` payload.
///
/// # Errors
///
/// The clean run's own failure.
pub fn mine_artifact(model: &RtModel) -> Result<String, CheckedError> {
    let program = mine_program(model)?;
    Ok(render_artifact(model.name(), &program))
}

/// Renders an invariant program as the deterministic JSON artifact.
///
/// The document is byte-stable for a given model: signals in check
/// order, rules in mined order, integers only (no floats), two-space
/// indentation like every other report in the workspace.
pub fn render_artifact(model_name: &str, program: &CheckProgram) -> String {
    let name = |i: usize| escape(&program.signals[i].name);
    let mut out = String::new();
    out.push_str("{\n  \"invariants\": {\n");
    let _ = writeln!(out, "    \"model\": \"{}\",", escape(model_name));
    let _ = writeln!(out, "    \"signals\": {},", program.signals.len());
    let _ = writeln!(out, "    \"rules\": {}", program.invariants.len());
    out.push_str("  },\n  \"signals\": [");
    for (i, sig) in program.signals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"kind\": \"{}\"}}",
            escape(&sig.name),
            sig.kind
        );
    }
    out.push_str("\n  ],\n  \"rules\": [");
    for (i, rule) in program.invariants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        match rule {
            Invariant::Range { sig, min, max } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"range\", \"signal\": \"{}\", \"min\": {min}, \"max\": {max}}}",
                    name(*sig)
                );
            }
            Invariant::Reachable { sig, values } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"reachable\", \"signal\": \"{}\", \"values\": [",
                    name(*sig)
                );
                for (k, v) in values.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{v}");
                }
                out.push_str("]}");
            }
            Invariant::Eq { a, b } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"eq\", \"a\": \"{}\", \"b\": \"{}\"}}",
                    name(*a),
                    name(*b)
                );
            }
            Invariant::Le { a, b } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"le\", \"a\": \"{}\", \"b\": \"{}\"}}",
                    name(*a),
                    name(*b)
                );
            }
            Invariant::Offset { a, b, delta } => {
                let _ = write!(
                    out,
                    "{{\"kind\": \"offset\", \"a\": \"{}\", \"b\": \"{}\", \"delta\": {delta}}}",
                    name(*a),
                    name(*b)
                );
            }
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Parses an invariant artifact back into `(model name, program)`.
///
/// The returned program carries no monitor table — artifacts transport
/// mined laws only; golden monitors are always re-recorded in-process.
///
/// # Errors
///
/// A human-readable message on malformed JSON, unknown rule kinds,
/// unknown signal references, or out-of-range numbers.
pub fn parse_artifact(text: &str) -> Result<(String, CheckProgram), String> {
    let doc = Json::parse(text).map_err(|e| format!("invariant artifact: {e}"))?;
    let header = doc
        .get("invariants")
        .ok_or("invariant artifact: missing `invariants` header")?;
    let model = header
        .get("model")
        .and_then(Json::as_str)
        .ok_or("invariant artifact: missing `invariants.model`")?
        .to_string();

    let mut signals = Vec::new();
    for (i, entry) in doc
        .get("signals")
        .and_then(Json::as_array)
        .ok_or("invariant artifact: missing `signals` array")?
        .iter()
        .enumerate()
    {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("invariant artifact: signal {i}: missing `name`"))?;
        let kind = match entry.get("kind").and_then(Json::as_str) {
            Some("register") => SignalKind::Register,
            Some("memory word") => SignalKind::MemoryWord,
            Some("bus") => SignalKind::Bus,
            other => {
                return Err(format!(
                    "invariant artifact: signal `{name}`: bad kind {other:?} \
                     (expected register|memory word|bus)"
                ))
            }
        };
        signals.push(CheckSignal {
            name: name.to_string(),
            kind,
        });
    }
    let index = |rule: usize, key: &str, entry: &Json| -> Result<usize, String> {
        let name = entry
            .get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("invariant artifact: rule {rule}: missing `{key}`"))?;
        signals
            .iter()
            .position(|s| s.name == name)
            .ok_or_else(|| format!("invariant artifact: rule {rule}: unknown signal `{name}`"))
    };
    let int = |rule: usize, key: &str, entry: &Json| -> Result<i64, String> {
        entry
            .get(key)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("invariant artifact: rule {rule}: missing integer `{key}`"))
    };

    let mut invariants = Vec::new();
    for (i, entry) in doc
        .get("rules")
        .and_then(Json::as_array)
        .ok_or("invariant artifact: missing `rules` array")?
        .iter()
        .enumerate()
    {
        let rule = match entry.get("kind").and_then(Json::as_str) {
            Some("range") => Invariant::Range {
                sig: index(i, "signal", entry)?,
                min: int(i, "min", entry)?,
                max: int(i, "max", entry)?,
            },
            Some("reachable") => {
                let values: Vec<i64> = entry
                    .get("values")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("invariant artifact: rule {i}: missing `values`"))?
                    .iter()
                    .map(Json::as_i64)
                    .collect::<Option<_>>()
                    .ok_or_else(|| {
                        format!("invariant artifact: rule {i}: non-integer reachable value")
                    })?;
                if !values.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!(
                        "invariant artifact: rule {i}: reachable values must be \
                         strictly ascending"
                    ));
                }
                Invariant::Reachable {
                    sig: index(i, "signal", entry)?,
                    values,
                }
            }
            Some("eq") => Invariant::Eq {
                a: index(i, "a", entry)?,
                b: index(i, "b", entry)?,
            },
            Some("le") => Invariant::Le {
                a: index(i, "a", entry)?,
                b: index(i, "b", entry)?,
            },
            Some("offset") => Invariant::Offset {
                a: index(i, "a", entry)?,
                b: index(i, "b", entry)?,
                delta: int(i, "delta", entry)?,
            },
            other => {
                return Err(format!(
                    "invariant artifact: rule {i}: bad kind {other:?} \
                     (expected range|reachable|eq|le|offset)"
                ))
            }
        };
        invariants.push(rule);
    }
    Ok((
        model,
        CheckProgram {
            signals,
            monitor: None,
            invariants,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;

    #[test]
    fn fig1_mines_the_expected_laws() {
        let model = fig1_model(3, 4);
        let program = mine_program(&model).expect("clean run");
        // Signal order: R1, R2 (registers), then B1, B2 (buses).
        let rendered: Vec<String> = program
            .invariants
            .iter()
            .map(|r| r.render(&program.signals))
            .collect();
        assert_eq!(
            rendered,
            ["R1 in [3, 7]", "R1 in {3, 7}", "R2 in [4, 4]", "R2 in {4}",],
            "canonical mined order"
        );
    }

    #[test]
    fn memory_word_signals_survive_the_artifact_round_trip() {
        let model = clockless_core::text::parse_model(
            "model mm steps 3\nregister IDX init 1\nregister R init 2\n\
             memory M[2] init 5\nbus B\nbus C\nmodule CP ops passa comb\n\
             transfer (M[0],B,-,-,1,CP,1,C,R)\n\
             transfer if R >= 0 then (R,B,-,-,2,CP,2,C,M[IDX])\n",
        )
        .unwrap();
        let artifact = mine_artifact(&model).expect("clean run");
        assert!(artifact.contains("\"memory word\""), "{artifact}");
        let (name, program) = parse_artifact(&artifact).expect("round trips");
        assert_eq!(name, "mm");
        assert!(program
            .signals
            .iter()
            .any(|s| s.name == "M[0]" && s.kind == SignalKind::MemoryWord));
        // Canonical: re-rendering the parsed program is byte-identical.
        assert_eq!(render_artifact(&name, &program), artifact);
    }

    #[test]
    fn relations_are_mined_in_priority_order() {
        use clockless_core::check::SignalKind::Register;
        let sig = |n: &str| CheckSignal {
            name: n.to_string(),
            kind: Register,
        };
        let signals = vec![sig("A"), sig("B"), sig("C"), sig("D")];
        // 3 deltas: A==B always; C = A + 10; D bounds A from above but
        // is neither equal nor a constant offset.
        let rows: &[[i64; 4]] = &[[1, 1, 11, 5], [2, 2, 12, 5], [1, 1, 11, 5]];
        let table = MonitorTable {
            deltas: rows.len() as u64,
            values: rows.iter().flatten().map(|&v| Value::Num(v)).collect(),
        };
        let mined = mine_invariants(&signals, &table);
        let rendered: Vec<String> = mined.iter().map(|r| r.render(&signals)).collect();
        assert!(rendered.contains(&"A == B".to_string()));
        assert!(
            rendered.contains(&"C - A == 10".to_string())
                || rendered.contains(&"A - C == -10".to_string())
        );
        assert!(rendered.contains(&"A <= D".to_string()));
        // Eq wins over Offset (k = 0) and Le for the A/B pair.
        assert!(!rendered.contains(&"A - B == 0".to_string()));
        assert!(!rendered.contains(&"A <= B".to_string()));
    }

    #[test]
    fn non_numeric_trajectories_mine_nothing() {
        let signals = vec![CheckSignal {
            name: "R".to_string(),
            kind: SignalKind::Register,
        }];
        let table = MonitorTable {
            deltas: 2,
            values: vec![Value::Num(1), Value::Disc],
        };
        assert!(mine_invariants(&signals, &table).is_empty());
    }

    #[test]
    fn artifact_round_trips_byte_stably() {
        let model = fig1_model(3, 4);
        let artifact = mine_artifact(&model).expect("mines");
        let (name, program) = parse_artifact(&artifact).expect("parses");
        assert_eq!(name, "fig1_example");
        assert_eq!(program.invariants, mine_program(&model).unwrap().invariants);
        assert!(program.monitor.is_none());
        // Render(parse(render)) is the identity — the artifact is canonical.
        assert_eq!(render_artifact(&name, &program), artifact);
    }

    /// The mined laws are *sound by construction*: they were learned from
    /// the clean run, so re-asserting them (plus the golden monitor) on
    /// that same clean run must never fire — on either backend, for every
    /// model in the corpus and both IKS chips. A false positive here
    /// would poison every campaign verdict downstream.
    #[test]
    fn checkers_never_fire_on_clean_corpus_runs() {
        use crate::monitor::{build_checkers, CheckerMode};
        use clockless_core::{execute_checked, Backend, ExecOptions};

        let mut models: Vec<(String, clockless_core::RtModel)> = Vec::new();
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../models");
        for entry in std::fs::read_dir(dir).expect("models directory") {
            let path = entry.expect("entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rtl") {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable");
            let model = clockless_core::text::parse_model(&text)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            models.push((path.display().to_string(), model));
        }
        assert!(
            models.len() >= 5,
            "corpus shrank to {} models",
            models.len()
        );
        {
            use clockless_iks::prelude::*;
            let constants = IkConstants::new(ArmGeometry::new(1.0, 1.0));
            let ik = build_ik_chip(to_fx(1.0), to_fx(1.0), constants)
                .expect("ik chip")
                .model;
            models.push(("ik chip".to_string(), ik));
            let samples = [to_fx(0.5), to_fx(1.5), to_fx(-1.0), to_fx(2.0)];
            let coeffs = [to_fx(2.0), to_fx(-0.5), to_fx(0.25), to_fx(1.0)];
            let fir = clockless_iks::build_fir_chip(samples, coeffs).expect("fir chip");
            models.push(("fir chip".to_string(), fir));
        }

        for (label, model) in &models {
            let program = build_checkers(model, CheckerMode::All)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
                .expect("All mode always yields a program");
            for backend in [Backend::Interpreted, Backend::Compiled] {
                let (_, report) =
                    execute_checked(model, backend, &ExecOptions::default(), &program)
                        .unwrap_or_else(|e| panic!("{label} ({backend:?}): {e}"));
                assert!(
                    report.is_clean(),
                    "{label} ({backend:?}): checker fired on the clean run: \
                     monitor={:?} invariant={:?}",
                    report.monitor,
                    report.invariant
                );
            }
        }
    }

    #[test]
    fn malformed_artifacts_are_rejected_with_context() {
        assert!(parse_artifact("not json").unwrap_err().contains("artifact"));
        let missing = r#"{"signals": [], "rules": []}"#;
        assert!(parse_artifact(missing).unwrap_err().contains("invariants"));
        let bad_rule = r#"{
            "invariants": {"model": "m", "signals": 1, "rules": 1},
            "signals": [{"name": "R", "kind": "register"}],
            "rules": [{"kind": "modulo", "signal": "R"}]
        }"#;
        assert!(parse_artifact(bad_rule).unwrap_err().contains("modulo"));
        let bad_sig = r#"{
            "invariants": {"model": "m", "signals": 1, "rules": 1},
            "signals": [{"name": "R", "kind": "register"}],
            "rules": [{"kind": "range", "signal": "Q", "min": 0, "max": 1}]
        }"#;
        assert!(parse_artifact(bad_sig).unwrap_err().contains("Q"));
    }
}
