//! Experiment E1 (paper Fig. 1 / §2.7): cost of building, elaborating and
//! simulating the canonical example, and of each pipeline stage.

use clockless_core::model::fig1_model;
use clockless_core::{RtSimulation, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    let model = fig1_model(3, 4);
    let mut sim = RtSimulation::new(&model).expect("elaborates");
    let summary = sim.run_to_completion().expect("runs");
    eprintln!("--- E1: Fig. 1 example ---");
    eprintln!("tuple: {}", model.tuples()[0]);
    eprintln!(
        "result: R1 = {} (expected 7), stats: {}",
        summary.register("R1").expect("R1 exists"),
        summary.stats
    );
    assert_eq!(summary.register("R1"), Some(Value::Num(7)));
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("fig1");

    g.bench_function("build_model", |b| {
        b.iter(|| black_box(fig1_model(black_box(3), black_box(4))))
    });

    let model = fig1_model(3, 4);
    g.bench_function("elaborate", |b| {
        b.iter(|| RtSimulation::new(black_box(&model)).expect("elaborates"))
    });

    g.bench_function("simulate", |b| {
        b.iter(|| {
            let mut sim = RtSimulation::new(&model).expect("elaborates");
            sim.run_to_completion().expect("runs")
        })
    });

    g.bench_function("simulate_traced", |b| {
        b.iter(|| {
            let mut sim = RtSimulation::traced(&model).expect("elaborates");
            sim.run_to_completion().expect("runs")
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
