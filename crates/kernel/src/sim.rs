//! The simulator: elaboration plus the delta-cycle event loop.
//!
//! The loop follows VHDL simulation semantics:
//!
//! 1. At the start of a delta cycle, all driver assignments scheduled for
//!    the current instant take effect; signals whose *effective* (resolved)
//!    value changes have an **event**.
//! 2. Processes waiting on those signals (and processes whose `wait for`
//!    expired) become runnable and execute, scheduling new assignments for
//!    the *next* delta cycle.
//! 3. When an instant produces no further activity, physical time advances
//!    to the next scheduled transaction; when none exists the simulation is
//!    quiescent and stops.
//!
//! Delta cycles are first-class and counted in [`SimStats`] because the
//! paper's central timing claim is stated in them: one control step of the
//! clock-free RT model costs exactly six delta cycles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::error::KernelError;
use crate::process::{Process, ProcessCtx, ProcessId, Wait};
use crate::signal::{Resolver, SignalId, SignalSlot};
use crate::time::{Femtos, SimTime};
use crate::trace::Trace;

/// Values a simulator can carry: cloneable, comparable, debuggable.
///
/// Implemented automatically for every eligible type.
pub trait SimValue: Clone + Eq + fmt::Debug + Send + 'static {}
impl<T: Clone + Eq + fmt::Debug + Send + 'static> SimValue for T {}

/// Counters describing one simulation run.
///
/// All counters are cumulative over the simulator's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Delta cycles executed (update/run rounds, including time-zero ones).
    pub delta_cycles: u64,
    /// Total process resumptions.
    pub process_activations: u64,
    /// Signal events (effective-value changes).
    pub events: u64,
    /// Driver transactions applied (including ones producing no event).
    pub driver_updates: u64,
    /// Physical-time advances.
    pub time_advances: u64,
    /// `Wait::UntilEq` filter firings that woke a process (the watched
    /// signal changed to the awaited value). Waiters are bucketed per
    /// awaited value, so the filter only ever fires on a match.
    pub wake_filter_hits: u64,
    /// `Wait::UntilEq` filter evaluations that suppressed a wake-up.
    /// Since waiters are bucketed per awaited value, non-matching
    /// waiters are never scanned and this counter is structurally zero;
    /// it is kept for report-layout stability.
    pub wake_filter_misses: u64,
    /// Highest number of processes made runnable in any single delta.
    pub peak_runnable: u64,
    /// Highest number of driver updates pending at the start of any
    /// single delta.
    pub peak_pending_updates: u64,
    /// Faults deliberately injected into the model(s) behind these
    /// counters. The kernel never sets this itself; fault-injection
    /// harnesses (`clockless-verify` campaigns) stamp it so merged totals
    /// carry the campaign size.
    pub injected_faults: u64,
    /// Job re-executions performed by a batch engine on top of this run.
    /// Like `injected_faults`, this is stamped by the harness (the fleet
    /// retry loop), not by the kernel.
    pub retries: u64,
}

impl SimStats {
    /// Folds another run's counters into this one: cumulative counters
    /// add, high-water marks (`peak_*`) take the maximum.
    ///
    /// This is the aggregation used by batch engines combining many
    /// independent kernel instances into one total (each instance is a
    /// separate simulation, so peaks across instances do not stack).
    ///
    /// # Examples
    ///
    /// ```
    /// use clockless_kernel::SimStats;
    ///
    /// let mut total = SimStats { delta_cycles: 10, peak_runnable: 4, ..Default::default() };
    /// let other = SimStats { delta_cycles: 5, peak_runnable: 9, ..Default::default() };
    /// total.merge(&other);
    /// assert_eq!(total.delta_cycles, 15);
    /// assert_eq!(total.peak_runnable, 9);
    /// ```
    pub fn merge(&mut self, other: &SimStats) {
        self.delta_cycles += other.delta_cycles;
        self.process_activations += other.process_activations;
        self.events += other.events;
        self.driver_updates += other.driver_updates;
        self.time_advances += other.time_advances;
        self.wake_filter_hits += other.wake_filter_hits;
        self.wake_filter_misses += other.wake_filter_misses;
        self.peak_runnable = self.peak_runnable.max(other.peak_runnable);
        self.peak_pending_updates = self.peak_pending_updates.max(other.peak_pending_updates);
        self.injected_faults += other.injected_faults;
        self.retries += other.retries;
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} deltas, {} activations, {} events, {} transactions, {} time advances",
            self.delta_cycles,
            self.process_activations,
            self.events,
            self.driver_updates,
            self.time_advances
        )
    }
}

/// A termination budget for [`Simulator::run_with_budget`].
///
/// All of the kernel's run loops are the same delta-stepping driver with
/// a different stopping rule; this enum names the rule. Execution
/// backends layered above the kernel wrap exactly one entry point
/// ([`run_with_budget`](Simulator::run_with_budget)) instead of three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunBudget {
    /// Run until the model is quiescent, with no budget at all (pays no
    /// clock reads in the loop).
    Unbounded,
    /// Run until quiescent, aborting with
    /// [`KernelError::WallBudgetExceeded`] once the wall clock passes
    /// the deadline. Checked after every delta cycle.
    Wall(std::time::Instant),
    /// Run until quiescent or until physical time would pass the given
    /// instant (in femtoseconds); stopping at the budget is not an
    /// error.
    SimTime(Femtos),
}

/// Outcome of [`Simulator::step_delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A delta cycle ran at the same physical time.
    Delta,
    /// Physical time advanced to the contained instant and a delta ran there.
    AdvancedTo(Femtos),
    /// Nothing left to do: the model is quiescent.
    Quiescent,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LifeCycle {
    Building,
    Running,
    Finished,
}

struct ProcSlot<V> {
    name: String,
    body: Option<Box<dyn Process<V>>>,
    /// `(signal, driver index within that signal)` pairs this process owns.
    owned: Vec<(SignalId, u32)>,
    /// Current sensitivity list (empty while in a timed wait or done).
    sens: Vec<SignalId>,
    /// In-kernel wake filter: only wake when the (single) watched signal
    /// equals this value (`Wait::UntilEq`).
    pred: Option<V>,
    /// Wait token; registrations with older tokens are stale.
    token: u64,
    runnable: bool,
    done: bool,
}

/// Sentinel driver index used by [`Simulator::force`].
const EXTERNAL: u32 = u32::MAX;

struct TimedUpdate<V> {
    fs: Femtos,
    seq: u64,
    signal: SignalId,
    driver: u32,
    value: V,
}

impl<V> PartialEq for TimedUpdate<V> {
    fn eq(&self, other: &Self) -> bool {
        self.fs == other.fs && self.seq == other.seq
    }
}
impl<V> Eq for TimedUpdate<V> {}
impl<V> PartialOrd for TimedUpdate<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for TimedUpdate<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.fs, self.seq).cmp(&(other.fs, other.seq))
    }
}

/// A discrete-event simulator with VHDL delta-cycle semantics.
///
/// Generic over the value type `V` carried by its signals, so the same
/// kernel runs the clock-free RT models (integer-with-sentinels values),
/// clocked netlists (bits) and anything in between.
///
/// # Examples
///
/// ```
/// use clockless_kernel::prelude::*;
///
/// let mut sim: Simulator<i64> = Simulator::new();
/// let a = sim.signal("a", 1);
/// let b = sim.signal("b", 0);
/// // A process that copies `a` to `b` once, then terminates.
/// sim.process("copy", &[b], move |ctx: &mut ProcessCtx<'_, i64>| {
///     let v = *ctx.value(a);
///     ctx.assign(b, v);
///     Wait::Done
/// });
/// sim.initialize()?;
/// sim.run()?;
/// assert_eq!(*sim.value(b), 1);
/// # Ok::<(), clockless_kernel::KernelError>(())
/// ```
pub struct Simulator<V: SimValue> {
    signals: Vec<SignalSlot<V>>,
    inits: Vec<V>,
    procs: Vec<ProcSlot<V>>,
    /// Driver updates taking effect at the next delta cycle.
    next_delta: Vec<(SignalId, u32, V)>,
    timed_updates: BinaryHeap<Reverse<TimedUpdate<V>>>,
    /// `(fs, seq, pid)` timed process wake-ups.
    timed_wakes: BinaryHeap<Reverse<(Femtos, u64, u32)>>,
    /// Processes to wake at the next delta (zero-duration `wait for`).
    zero_wakes: Vec<u32>,
    runnable: Vec<u32>,
    now: SimTime,
    seq: u64,
    /// Monotonic per-delta tick used for `'event` queries and the
    /// changed-set dedup (a signal is in the changed set iff its
    /// `last_event_tick` equals the current tick).
    tick: u64,
    stats: SimStats,
    /// Per-process resumption counts, indexed by `ProcessId`.
    activations: Vec<u64>,
    trace: Option<Trace<V>>,
    /// Per-signal commit-observation flags (empty = observation off).
    observe: Vec<bool>,
    /// `(delta, signal, effective value)` commits of observed signals, in
    /// chronological order. Independent of tracing.
    commit_log: Vec<(u64, SignalId, V)>,
    delta_limit: u64,
    life: LifeCycle,
    /// Scratch buffers reused across delta cycles. The `_back` buffers
    /// double-buffer their live counterparts: each delta swaps the full
    /// queue out and hands its (empty, capacity-preserving) twin back in,
    /// so the hot loop never reallocates once the model reaches steady
    /// state.
    scratch_out: Vec<(SignalId, u32, V, Femtos)>,
    scratch_changed: Vec<u32>,
    next_delta_back: Vec<(SignalId, u32, V)>,
    zero_wakes_back: Vec<u32>,
    runnable_back: Vec<u32>,
}

impl<V: SimValue> Default for Simulator<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: SimValue> fmt::Debug for Simulator<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("signals", &self.signals.len())
            .field("processes", &self.procs.len())
            .field("now", &self.now)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<V: SimValue> Simulator<V> {
    /// Creates an empty simulator.
    pub fn new() -> Self {
        Simulator {
            signals: Vec::new(),
            inits: Vec::new(),
            procs: Vec::new(),
            next_delta: Vec::new(),
            timed_updates: BinaryHeap::new(),
            timed_wakes: BinaryHeap::new(),
            zero_wakes: Vec::new(),
            runnable: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            tick: 0,
            stats: SimStats::default(),
            activations: Vec::new(),
            trace: None,
            observe: Vec::new(),
            commit_log: Vec::new(),
            delta_limit: 100_000_000,
            life: LifeCycle::Building,
            scratch_out: Vec::new(),
            scratch_changed: Vec::new(),
            next_delta_back: Vec::new(),
            zero_wakes_back: Vec::new(),
            runnable_back: Vec::new(),
        }
    }

    /// Declares an unresolved signal with the given initial value.
    ///
    /// Unresolved signals accept at most one driver; violations are
    /// reported by [`initialize`](Self::initialize).
    pub fn signal(&mut self, name: impl Into<String>, init: V) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals
            .push(SignalSlot::new(name.into(), init.clone(), None));
        self.inits.push(init);
        id
    }

    /// Declares a resolved signal: its effective value is the resolution
    /// function applied to all driver values, exactly as for a VHDL
    /// resolved signal. This is how the paper's buses and functional-unit
    /// input ports are modeled.
    pub fn resolved_signal(
        &mut self,
        name: impl Into<String>,
        init: V,
        resolver: Resolver<V>,
    ) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals
            .push(SignalSlot::new(name.into(), init.clone(), Some(resolver)));
        self.inits.push(init);
        id
    }

    /// Adds a process, declaring which signals it drives.
    ///
    /// A driver is created on each listed signal, initialized to the
    /// signal's declared initial value (the paper's port defaults and
    /// signal defaults coincide — everything starts at `DISC`). The process
    /// body runs for the first time during [`initialize`](Self::initialize).
    ///
    /// # Panics
    ///
    /// Panics if any driven signal id is unknown.
    pub fn process(
        &mut self,
        name: impl Into<String>,
        drives: &[SignalId],
        body: impl Process<V> + 'static,
    ) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        let mut owned = Vec::with_capacity(drives.len());
        for &sid in drives {
            let slot = &mut self.signals[sid.index()];
            let driver = slot.drivers.len() as u32;
            let init = self.inits[sid.index()].clone();
            slot.drivers.push(init);
            owned.push((sid, driver));
        }
        self.procs.push(ProcSlot {
            name: name.into(),
            body: Some(Box::new(body)),
            owned,
            sens: Vec::new(),
            pred: None,
            token: 0,
            runnable: false,
            done: false,
        });
        self.activations.push(0);
        pid
    }

    /// Enables waveform tracing of every signal event.
    ///
    /// Must be called before [`initialize`](Self::initialize) to capture
    /// initial values.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Trace::new());
    }

    /// Sets the per-instant delta-cycle budget (default: 10^8).
    ///
    /// Exceeding it aborts the run with [`KernelError::DeltaOverflow`],
    /// the usual symptom of a zero-delay oscillation.
    pub fn set_delta_limit(&mut self, limit: u64) {
        self.delta_limit = limit;
    }

    /// Runs every process once (VHDL initialization) and prepares the
    /// event loop.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::UnresolvedMultipleDrivers`] if an unresolved
    /// signal ended up with more than one driver, or
    /// [`KernelError::BadPhase`] if called more than once.
    pub fn initialize(&mut self) -> Result<(), KernelError> {
        if self.life != LifeCycle::Building {
            return Err(KernelError::BadPhase("initialize called twice"));
        }
        for (i, s) in self.signals.iter().enumerate() {
            if s.resolver.is_none() && s.drivers.len() > 1 {
                return Err(KernelError::UnresolvedMultipleDrivers {
                    signal: SignalId(i as u32),
                    name: s.name.clone(),
                    drivers: s.drivers.len(),
                });
            }
        }
        if let Some(trace) = &mut self.trace {
            for (i, s) in self.signals.iter().enumerate() {
                trace.record(SimTime::ZERO, SignalId(i as u32), s.value.clone());
            }
        }
        self.life = LifeCycle::Running;
        for pid in 0..self.procs.len() as u32 {
            self.procs[pid as usize].runnable = true;
            self.runnable.push(pid);
        }
        Ok(())
    }

    /// Executes one delta cycle (or advances time to the next scheduled
    /// instant and executes the first delta cycle there).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadPhase`] before `initialize`, or
    /// [`KernelError::DeltaOverflow`] when the instant's delta budget is
    /// exhausted.
    pub fn step_delta(&mut self) -> Result<StepOutcome, KernelError> {
        match self.life {
            LifeCycle::Building => {
                return Err(KernelError::BadPhase("step_delta before initialize"))
            }
            LifeCycle::Finished => return Ok(StepOutcome::Quiescent),
            LifeCycle::Running => {}
        }

        // If the current instant is exhausted, advance physical time.
        let mut advanced = None;
        if self.instant_exhausted() {
            match self.next_instant() {
                Some(fs) => {
                    self.now = self.now.advanced_to(fs);
                    self.stats.time_advances += 1;
                    advanced = Some(fs);
                }
                None => {
                    self.life = LifeCycle::Finished;
                    return Ok(StepOutcome::Quiescent);
                }
            }
        }

        if self.now.delta >= self.delta_limit {
            return Err(KernelError::DeltaOverflow {
                at: self.now,
                limit: self.delta_limit,
            });
        }

        self.tick += 1;

        // Phase 1: apply driver transactions due at this instant. The
        // pending queue is swapped against its (empty) double buffer so
        // the drained allocation is reused next delta instead of freed.
        let mut changed = std::mem::take(&mut self.scratch_changed);
        changed.clear();
        let mut updates = std::mem::replace(
            &mut self.next_delta,
            std::mem::take(&mut self.next_delta_back),
        );
        self.stats.peak_pending_updates = self.stats.peak_pending_updates.max(updates.len() as u64);
        for (sid, driver, value) in updates.drain(..) {
            self.apply_update(sid, driver, value, &mut changed);
        }
        self.next_delta_back = updates;
        if self.now.delta == 0 {
            while let Some(Reverse(u)) = self.timed_updates.peek() {
                if u.fs != self.now.fs {
                    break;
                }
                let Reverse(u) = self.timed_updates.pop().expect("peeked");
                self.apply_update(u.signal, u.driver, u.value, &mut changed);
            }
            while let Some(&Reverse((fs, _, pid))) = self.timed_wakes.peek() {
                if fs != self.now.fs {
                    break;
                }
                self.timed_wakes.pop();
                self.make_runnable(pid);
            }
        }

        // Phase 2: signal events wake sensitive processes.
        for sid in changed.drain(..) {
            self.wake_waiters(sid);
        }
        self.scratch_changed = changed;
        let mut zero = std::mem::replace(
            &mut self.zero_wakes,
            std::mem::take(&mut self.zero_wakes_back),
        );
        for pid in zero.drain(..) {
            self.make_runnable(pid);
        }
        self.zero_wakes_back = zero;

        // Phase 3: run all runnable processes.
        self.stats.peak_runnable = self.stats.peak_runnable.max(self.runnable.len() as u64);
        let mut run_list =
            std::mem::replace(&mut self.runnable, std::mem::take(&mut self.runnable_back));
        for &pid in &run_list {
            self.run_process(pid);
        }
        run_list.clear();
        self.runnable_back = run_list;

        self.stats.delta_cycles += 1;
        self.now = self.now.next_delta();
        Ok(match advanced {
            Some(fs) => StepOutcome::AdvancedTo(fs),
            None => StepOutcome::Delta,
        })
    }

    /// Runs delta cycles until quiescence or until the budget stops the
    /// loop. This is the single run driver; [`run`](Self::run),
    /// [`run_deadlined`](Self::run_deadlined) and
    /// [`run_until`](Self::run_until) are thin wrappers selecting a
    /// [`RunBudget`], and alternative execution backends should wrap this
    /// entry point rather than the convenience methods.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`step_delta`](Self::step_delta), plus
    /// [`KernelError::WallBudgetExceeded`] when a
    /// [`RunBudget::Wall`] deadline passes. A [`RunBudget::SimTime`]
    /// budget is not an error: the loop returns normally with the
    /// simulator standing at the first scheduled instant past the
    /// deadline.
    pub fn run_with_budget(&mut self, budget: RunBudget) -> Result<SimStats, KernelError> {
        loop {
            if let RunBudget::SimTime(deadline_fs) = budget {
                // Peek ahead before stepping: if the next activity lies
                // beyond the physical deadline, stop without executing it.
                if self.instant_exhausted() {
                    match self.next_instant() {
                        None => {
                            self.life = LifeCycle::Finished;
                            return Ok(self.stats);
                        }
                        Some(fs) if fs > deadline_fs => return Ok(self.stats),
                        Some(_) => {}
                    }
                }
            }
            if self.step_delta()? == StepOutcome::Quiescent {
                return Ok(self.stats);
            }
            if let RunBudget::Wall(deadline) = budget {
                if std::time::Instant::now() >= deadline {
                    return Err(KernelError::WallBudgetExceeded { at: self.now });
                }
            }
        }
    }

    /// Runs until the model is quiescent.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`step_delta`](Self::step_delta).
    pub fn run(&mut self) -> Result<SimStats, KernelError> {
        self.run_with_budget(RunBudget::Unbounded)
    }

    /// Runs until quiescent, aborting with
    /// [`KernelError::WallBudgetExceeded`] once the wall clock passes
    /// `deadline`.
    ///
    /// The deadline is checked after every delta cycle, so the overrun is
    /// bounded by one delta's work. This is the enforcement point for the
    /// batch engine's wall budgets; use [`run`](Self::run) when no budget
    /// applies (it pays no clock reads).
    ///
    /// # Errors
    ///
    /// Propagates any error from [`step_delta`](Self::step_delta), plus
    /// [`KernelError::WallBudgetExceeded`] on timeout.
    pub fn run_deadlined(&mut self, deadline: std::time::Instant) -> Result<SimStats, KernelError> {
        self.run_with_budget(RunBudget::Wall(deadline))
    }

    /// Runs until quiescent or until physical time would pass `deadline_fs`.
    ///
    /// On return the simulator either is quiescent or stands at the first
    /// scheduled instant after the deadline.
    ///
    /// # Errors
    ///
    /// Propagates any error from [`step_delta`](Self::step_delta).
    pub fn run_until(&mut self, deadline_fs: Femtos) -> Result<SimStats, KernelError> {
        self.run_with_budget(RunBudget::SimTime(deadline_fs))
    }

    /// Externally overrides the value of a driverless signal, taking effect
    /// in the next delta cycle (testbench stimulus).
    ///
    /// On a *resolved* signal the forced value passes through the
    /// resolution function (as a single-element driver set) before
    /// becoming effective, so sentinel normalization a resolver performs
    /// applies to external stimulus too. Unresolved signals take the raw
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::NotADriver`] if the signal has process
    /// drivers (stimulus would fight them), or
    /// [`KernelError::UnknownSignal`] for an invalid id.
    pub fn force(&mut self, signal: SignalId, value: V) -> Result<(), KernelError> {
        let slot = self
            .signals
            .get(signal.index())
            .ok_or(KernelError::UnknownSignal(signal))?;
        if !slot.drivers.is_empty() {
            return Err(KernelError::NotADriver {
                signal,
                process: "<external>".into(),
            });
        }
        self.next_delta.push((signal, EXTERNAL, value));
        if self.life == LifeCycle::Finished {
            // New stimulus revives a quiescent simulation.
            self.life = LifeCycle::Running;
        }
        Ok(())
    }

    /// The current effective value of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` does not belong to this simulator.
    pub fn value(&self, signal: SignalId) -> &V {
        &self.signals[signal.index()].value
    }

    /// The declared name of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `signal` does not belong to this simulator.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signals[signal.index()].name
    }

    /// The declared name of a process.
    ///
    /// # Panics
    ///
    /// Panics if `process` does not belong to this simulator.
    pub fn process_name(&self, process: ProcessId) -> &str {
        &self.procs[process.index()].name
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// The names of all signals, in declaration (id) order.
    pub fn signal_names(&self) -> impl Iterator<Item = &str> {
        self.signals.iter().map(|s| s.name.as_str())
    }

    /// Number of declared processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// The names of all processes, in declaration (id) order.
    pub fn process_names(&self) -> impl Iterator<Item = &str> {
        self.procs.iter().map(|p| p.name.as_str())
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-process resumption counts, indexed by [`ProcessId`].
    ///
    /// `activation_counts()[pid.index()]` is how often that process has
    /// run, including the initialization resumption. The sum over all
    /// processes equals [`SimStats::process_activations`].
    pub fn activation_counts(&self) -> &[u64] {
        &self.activations
    }

    /// `true` once the simulation has quiesced.
    pub fn is_quiescent(&self) -> bool {
        self.life == LifeCycle::Finished
    }

    /// The recorded waveform, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace<V>> {
        self.trace.as_ref()
    }

    /// Enables commit observation for `signals`: every subsequent change
    /// of an observed signal's effective value is appended to the
    /// [commit log](Self::commit_log) as `(delta, signal, value)`.
    ///
    /// Observation is independent of tracing and costs one boolean test
    /// per committed event. Initial values are not logged — they are
    /// state, not commits; read them with [`value`](Self::value) before
    /// stepping. Calling this again replaces the observed set but keeps
    /// the log.
    pub fn observe_commits(&mut self, signals: &[SignalId]) {
        self.observe.clear();
        self.observe.resize(self.signals.len(), false);
        for sid in signals {
            if let Some(flag) = self.observe.get_mut(sid.index()) {
                *flag = true;
            }
        }
    }

    /// The commits of observed signals so far, in chronological order.
    /// Empty unless [`observe_commits`](Self::observe_commits) enabled
    /// observation.
    pub fn commit_log(&self) -> &[(u64, SignalId, V)] {
        &self.commit_log
    }

    fn instant_exhausted(&self) -> bool {
        self.runnable.is_empty() && self.next_delta.is_empty() && self.zero_wakes.is_empty()
    }

    /// Earliest future physical instant with scheduled activity.
    fn next_instant(&self) -> Option<Femtos> {
        let u = self.timed_updates.peek().map(|Reverse(u)| u.fs);
        let w = self.timed_wakes.peek().map(|Reverse((fs, _, _))| *fs);
        match (u, w) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn apply_update(&mut self, sid: SignalId, driver: u32, value: V, changed: &mut Vec<u32>) {
        self.stats.driver_updates += 1;
        let slot = &mut self.signals[sid.index()];
        let effective = if driver == EXTERNAL {
            // External stimulus goes through the resolution function like
            // any driver would (a forced signal has no process drivers, so
            // the resolver sees exactly one value). Unresolved signals
            // take the raw value.
            match &slot.resolver {
                Some(resolve) => resolve(std::slice::from_ref(&value)),
                None => value,
            }
        } else {
            slot.drivers[driver as usize] = value;
            slot.effective()
        };
        if effective != slot.value {
            slot.value = effective.clone();
            // Dedup without scanning: the signal is already in `changed`
            // iff an earlier update this delta stamped it with the
            // current tick.
            if slot.last_event_tick != self.tick {
                changed.push(sid.0);
            }
            slot.last_event_tick = self.tick;
            self.stats.events += 1;
            if self.observe.get(sid.index()).copied().unwrap_or(false) {
                self.commit_log
                    .push((self.now.delta, sid, effective.clone()));
            }
            if let Some(trace) = &mut self.trace {
                trace.record(self.now, sid, effective);
            }
        }
    }

    fn wake_waiters(&mut self, sid: u32) {
        // One in-place pass per list: stale registrations (token mismatch
        // — the process re-armed or terminated since registering) are
        // compacted away, live ones are order-preserved and woken. No
        // allocation, no second sweep.
        let Simulator {
            signals,
            procs,
            runnable,
            stats,
            ..
        } = self;
        let slot = &mut signals[sid as usize];
        let mut kept = 0;
        for i in 0..slot.waiters.len() {
            let (pid, tok) = slot.waiters[i];
            let p = &mut procs[pid as usize];
            if p.done || p.token != tok {
                continue; // stale registration: dropped by compaction
            }
            slot.waiters[kept] = (pid, tok);
            kept += 1;
            if !p.runnable {
                p.runnable = true;
                runnable.push(pid);
            }
        }
        slot.waiters.truncate(kept);
        // Wake filters (Wait::UntilEq) are bucketed per awaited value, so
        // an event only ever visits the waiters whose predicate just
        // became true: every live entry in the matching bucket is a
        // filter hit, and non-matching waiters are never scanned — the
        // miss counter is structurally zero.
        let current = slot.value.clone();
        if let Some((_, bucket)) = slot.pred_buckets.iter_mut().find(|(v, _)| *v == current) {
            let mut kept = 0;
            for i in 0..bucket.len() {
                let (pid, tok) = bucket[i];
                let p = &mut procs[pid as usize];
                if p.done || p.token != tok {
                    continue; // stale registration: dropped by compaction
                }
                bucket[kept] = (pid, tok);
                kept += 1;
                stats.wake_filter_hits += 1;
                if !p.runnable {
                    p.runnable = true;
                    runnable.push(pid);
                }
            }
            bucket.truncate(kept);
        }
    }

    fn make_runnable(&mut self, pid: u32) {
        let p = &mut self.procs[pid as usize];
        if !p.done && !p.runnable {
            p.runnable = true;
            self.runnable.push(pid);
        }
    }

    fn run_process(&mut self, pid: u32) {
        let mut body = match self.procs[pid as usize].body.take() {
            Some(b) => b,
            None => return,
        };
        self.procs[pid as usize].runnable = false;
        self.stats.process_activations += 1;
        self.activations[pid as usize] += 1;

        let mut out = std::mem::take(&mut self.scratch_out);
        out.clear();
        let wait = {
            let p = &self.procs[pid as usize];
            let mut ctx = ProcessCtx {
                pid: ProcessId(pid),
                now: self.now,
                tick: self.tick,
                signals: &self.signals,
                owned: &p.owned,
                out: &mut out,
            };
            body.resume(&mut ctx)
        };

        for (sid, driver, value, delay) in out.drain(..) {
            if delay == 0 {
                self.next_delta.push((sid, driver, value));
            } else {
                self.seq += 1;
                self.timed_updates.push(Reverse(TimedUpdate {
                    fs: self.now.fs + delay,
                    seq: self.seq,
                    signal: sid,
                    driver,
                    value,
                }));
            }
        }
        self.scratch_out = out;

        match wait {
            Wait::Same => {
                self.procs[pid as usize].body = Some(body);
            }
            Wait::Event(sigs) => {
                let same = {
                    let p = &self.procs[pid as usize];
                    p.token != 0 && p.pred.is_none() && p.sens == sigs
                };
                if !same {
                    let token = {
                        let p = &mut self.procs[pid as usize];
                        p.token += 1;
                        p.pred = None;
                        p.token
                    };
                    for sid in &sigs {
                        self.signals[sid.index()].waiters.push((pid, token));
                    }
                    // The list is moved into the slot, not cloned; the
                    // registrations above only needed to borrow it.
                    self.procs[pid as usize].sens = sigs;
                }
                self.procs[pid as usize].body = Some(body);
            }
            Wait::UntilEq(sig, value) => {
                let same = {
                    let p = &self.procs[pid as usize];
                    p.token != 0
                        && p.sens.len() == 1
                        && p.sens[0] == sig
                        && p.pred.as_ref() == Some(&value)
                };
                if !same {
                    let token = {
                        let p = &mut self.procs[pid as usize];
                        p.token += 1;
                        p.sens.clear();
                        p.sens.push(sig);
                        p.pred = Some(value.clone());
                        p.token
                    };
                    // Filtered waits register in the bucket for their
                    // awaited value, not the plain waiter list: events
                    // whose new value differs never see this process.
                    let slot = &mut self.signals[sig.index()];
                    match slot.pred_buckets.iter_mut().find(|(v, _)| *v == value) {
                        Some((_, bucket)) => bucket.push((pid, token)),
                        None => slot.pred_buckets.push((value, vec![(pid, token)])),
                    }
                }
                self.procs[pid as usize].body = Some(body);
            }
            Wait::For(delay) => {
                {
                    let p = &mut self.procs[pid as usize];
                    p.token += 1; // invalidate event registrations
                    p.sens.clear();
                    p.pred = None;
                }
                if delay == 0 {
                    self.zero_wakes.push(pid);
                } else {
                    self.seq += 1;
                    self.timed_wakes
                        .push(Reverse((self.now.fs + delay, self.seq, pid)));
                }
                self.procs[pid as usize].body = Some(body);
            }
            Wait::Done => {
                let p = &mut self.procs[pid as usize];
                p.done = true;
                p.token += 1;
                // body dropped
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::ProcessCtx;
    use crate::time::NS;
    use std::sync::Arc;

    #[test]
    fn copy_process_runs_once() {
        let mut sim: Simulator<i64> = Simulator::new();
        let a = sim.signal("a", 5);
        let b = sim.signal("b", 0);
        sim.process("copy", &[b], move |ctx: &mut ProcessCtx<'_, i64>| {
            let v = *ctx.value(a);
            ctx.assign(b, v);
            Wait::Done
        });
        sim.initialize().unwrap();
        let stats = sim.run().unwrap();
        assert_eq!(*sim.value(b), 5);
        assert_eq!(stats.process_activations, 1);
    }

    #[test]
    fn commit_log_records_only_observed_signals_in_order() {
        // Same chain as `delta_chain_counts_deltas`, observing s1 and s3
        // but not s2: the log must hold exactly the observed commits,
        // tagged with the delta cycle they landed in.
        let mut sim: Simulator<i64> = Simulator::new();
        let s1 = sim.signal("s1", 0);
        let s2 = sim.signal("s2", 0);
        let s3 = sim.signal("s3", 0);
        sim.process("p1", &[s1], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign(s1, 1);
            Wait::Done
        });
        sim.process("p2", &[s2], move |ctx: &mut ProcessCtx<'_, i64>| {
            if *ctx.value(s1) == 1 {
                ctx.assign(s2, 2);
            }
            Wait::on(s1)
        });
        sim.process("p3", &[s3], move |ctx: &mut ProcessCtx<'_, i64>| {
            if *ctx.value(s2) == 2 {
                ctx.assign(s3, 3);
            }
            Wait::on(s2)
        });
        sim.observe_commits(&[s1, s3]);
        sim.initialize().unwrap();
        assert!(
            sim.commit_log().is_empty(),
            "initial values are not commits"
        );
        sim.run().unwrap();
        // s1 commits at delta 1, s3 at delta 3; s2's commit is unobserved.
        assert_eq!(sim.commit_log(), [(1, s1, 1), (3, s3, 3)]);
    }

    #[test]
    fn delta_chain_counts_deltas() {
        // p1 bumps s1; p2 sensitive to s1 bumps s2; p3 sensitive to s2.
        let mut sim: Simulator<i64> = Simulator::new();
        let s1 = sim.signal("s1", 0);
        let s2 = sim.signal("s2", 0);
        let s3 = sim.signal("s3", 0);
        sim.process("p1", &[s1], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign(s1, 1);
            Wait::Done
        });
        sim.process("p2", &[s2], move |ctx: &mut ProcessCtx<'_, i64>| {
            if *ctx.value(s1) == 1 {
                ctx.assign(s2, 2);
            }
            Wait::on(s1)
        });
        sim.process("p3", &[s3], move |ctx: &mut ProcessCtx<'_, i64>| {
            if *ctx.value(s2) == 2 {
                ctx.assign(s3, 3);
            }
            Wait::on(s2)
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(s3), 3);
        // delta 0: all run; delta 1: s1 event -> p2; delta 2: s2 -> p3;
        // delta 3: s3 event, no waiters; quiescent.
        assert_eq!(sim.now().fs, 0);
    }

    #[test]
    fn resolved_signal_uses_resolver() {
        let mut sim: Simulator<i64> = Simulator::new();
        let bus = sim.resolved_signal("bus", 0, Arc::new(|vs: &[i64]| vs.iter().sum()));
        sim.process("d1", &[bus], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign(bus, 10);
            Wait::Done
        });
        sim.process("d2", &[bus], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign(bus, 32);
            Wait::Done
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(bus), 42);
    }

    #[test]
    fn unresolved_two_drivers_rejected() {
        let mut sim: Simulator<i64> = Simulator::new();
        let s = sim.signal("s", 0);
        sim.process("d1", &[s], |_: &mut ProcessCtx<'_, i64>| Wait::Done);
        sim.process("d2", &[s], |_: &mut ProcessCtx<'_, i64>| Wait::Done);
        let err = sim.initialize().unwrap_err();
        assert!(matches!(
            err,
            KernelError::UnresolvedMultipleDrivers { drivers: 2, .. }
        ));
    }

    #[test]
    fn timed_wait_advances_physical_time() {
        let mut sim: Simulator<i64> = Simulator::new();
        let s = sim.signal("s", 0);
        let mut fired = 0;
        sim.process("timer", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
            fired += 1;
            ctx.assign(s, fired);
            if fired < 3 {
                Wait::For(10 * NS)
            } else {
                Wait::Done
            }
        });
        sim.initialize().unwrap();
        let stats = sim.run().unwrap();
        assert_eq!(*sim.value(s), 3);
        assert_eq!(sim.now().fs, 20 * NS);
        assert_eq!(stats.time_advances, 2);
    }

    #[test]
    fn timed_assignment_applies_later() {
        let mut sim: Simulator<i64> = Simulator::new();
        let s = sim.signal("s", 0);
        sim.process("d", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign_after(s, 7, 5 * NS);
            Wait::Done
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(s), 7);
        assert_eq!(sim.now().fs, 5 * NS);
    }

    #[test]
    fn force_drives_input_signals() {
        let mut sim: Simulator<i64> = Simulator::new();
        let input = sim.signal("in", 0);
        let out = sim.signal("out", 0);
        sim.process("follow", &[out], move |ctx: &mut ProcessCtx<'_, i64>| {
            let v = *ctx.value(input);
            ctx.assign(out, v * 2);
            Wait::on(input)
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        sim.force(input, 21).unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(out), 42);
    }

    #[test]
    fn force_rejected_on_driven_signal() {
        let mut sim: Simulator<i64> = Simulator::new();
        let s = sim.signal("s", 0);
        sim.process("d", &[s], |_: &mut ProcessCtx<'_, i64>| Wait::Done);
        sim.initialize().unwrap();
        assert!(sim.force(s, 1).is_err());
    }

    #[test]
    fn oscillation_hits_delta_limit() {
        let mut sim: Simulator<i64> = Simulator::new();
        let s = sim.signal("s", 0);
        sim.process("osc", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
            let v = *ctx.value(s);
            ctx.assign(s, 1 - v);
            Wait::on(s)
        });
        sim.set_delta_limit(100);
        sim.initialize().unwrap();
        let err = sim.run().unwrap_err();
        assert!(matches!(err, KernelError::DeltaOverflow { limit: 100, .. }));
    }

    #[test]
    fn until_eq_filters_wakeups_in_kernel() {
        let mut sim: Simulator<i64> = Simulator::new();
        let counter = sim.signal("counter", 0);
        let hits = sim.signal("hits", 0);
        // A driver counts 0..10 through delta cycles.
        let mut n = 0i64;
        sim.process("count", &[counter], move |ctx: &mut ProcessCtx<'_, i64>| {
            n += 1;
            if n <= 10 {
                ctx.assign(counter, n);
                Wait::on(counter)
            } else {
                Wait::Done
            }
        });
        // A watcher that only wants counter == 7.
        let mut wakes = 0i64;
        sim.process("watch", &[hits], move |ctx: &mut ProcessCtx<'_, i64>| {
            wakes += 1;
            ctx.assign(hits, wakes);
            if wakes == 1 {
                // Initialization resume; arm the filter.
                return Wait::UntilEq(counter, 7);
            }
            assert_eq!(*ctx.value(counter), 7, "woken only at the target value");
            Wait::Done
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        // Exactly two resumptions: initialization + the filtered hit.
        assert_eq!(*sim.value(hits), 2);
    }

    #[test]
    fn until_eq_reregisters_for_new_targets() {
        let mut sim: Simulator<i64> = Simulator::new();
        let counter = sim.signal("counter", 0);
        let log = sim.signal("log", 0);
        let mut n = 0i64;
        sim.process("count", &[counter], move |ctx: &mut ProcessCtx<'_, i64>| {
            n += 1;
            if n <= 10 {
                ctx.assign(counter, n);
                Wait::on(counter)
            } else {
                Wait::Done
            }
        });
        // Wait for 3, then for 8.
        let mut state = 0;
        sim.process(
            "stages",
            &[log],
            move |ctx: &mut ProcessCtx<'_, i64>| match state {
                0 => {
                    state = 1;
                    Wait::UntilEq(counter, 3)
                }
                1 => {
                    assert_eq!(*ctx.value(counter), 3);
                    ctx.assign(log, 3);
                    state = 2;
                    Wait::UntilEq(counter, 8)
                }
                _ => {
                    assert_eq!(*ctx.value(counter), 8);
                    ctx.assign(log, 8);
                    Wait::Done
                }
            },
        );
        sim.initialize().unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(log), 8);
    }

    #[test]
    fn wait_forever_never_resumes() {
        let mut sim: Simulator<i64> = Simulator::new();
        let s = sim.signal("s", 0);
        let mut count = 0u32;
        sim.process("once", &[s], move |ctx: &mut ProcessCtx<'_, i64>| {
            count += 1;
            assert_eq!(count, 1);
            ctx.assign(s, 1);
            Wait::Event(vec![])
        });
        sim.initialize().unwrap();
        let stats = sim.run().unwrap();
        assert_eq!(stats.process_activations, 1);
    }

    #[test]
    fn had_event_reports_trigger() {
        let mut sim: Simulator<i64> = Simulator::new();
        let a = sim.signal("a", 0);
        let b = sim.signal("b", 0);
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        sim.process("kick", &[a], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign(a, 1);
            Wait::Done
        });
        sim.process("watch", &[b], move |ctx: &mut ProcessCtx<'_, i64>| {
            seen2
                .lock()
                .unwrap()
                .push((ctx.had_event(a), ctx.had_event(b)));
            Wait::on(a)
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        let log = seen.lock().unwrap();
        // First activation: initialization, no events. Second: a fired.
        assert_eq!(log.as_slice(), &[(false, false), (true, false)]);
    }

    #[test]
    fn same_wait_keeps_sensitivity() {
        let mut sim: Simulator<i64> = Simulator::new();
        let a = sim.signal("a", 0);
        let out = sim.signal("out", 0);
        let mut first = true;
        sim.process("echo", &[out], move |ctx: &mut ProcessCtx<'_, i64>| {
            if first {
                first = false;
                return Wait::on(a);
            }
            let v = *ctx.value(a);
            ctx.assign(out, v);
            Wait::Same
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        sim.force(a, 9).unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(out), 9);
        sim.force(a, 11).unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(out), 11);
    }

    #[test]
    fn until_eq_rearms_after_same_wait() {
        // `Wait::Same` keeps an armed `UntilEq` filter (same token, same
        // predicate); a later `UntilEq` with a new target must bump the
        // token and re-register, leaving the old entry stale.
        let mut sim: Simulator<i64> = Simulator::new();
        let counter = sim.signal("counter", 0);
        let log = sim.signal("log", 0);
        let seq = [1i64, 3, 5, 3, 8, 9];
        let mut i = 0;
        sim.process("drive", &[counter], move |ctx: &mut ProcessCtx<'_, i64>| {
            if i < seq.len() {
                ctx.assign(counter, seq[i]);
                i += 1;
                Wait::on(counter)
            } else {
                Wait::Done
            }
        });
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let mut state = 0;
        sim.process("watch", &[log], move |ctx: &mut ProcessCtx<'_, i64>| {
            if state > 0 {
                seen2.lock().unwrap().push(*ctx.value(counter));
            }
            state += 1;
            match state {
                1 => Wait::UntilEq(counter, 3),
                2 => Wait::Same, // keep waiting for counter == 3
                3 => Wait::UntilEq(counter, 8),
                _ => Wait::Done,
            }
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        // Woken at both 3s and at 8; the 1, 5 and 9 events are filtered,
        // and the stale ==3 registration never fires after the re-arm.
        assert_eq!(seen.lock().unwrap().as_slice(), &[3, 3, 8]);
    }

    #[test]
    fn stale_token_never_wakes_rearmed_process() {
        // Re-arming onto a different signal leaves the old waiter entry
        // behind; its stale token must keep it from waking the process.
        let mut sim: Simulator<i64> = Simulator::new();
        let a = sim.signal("a", 0);
        let b = sim.signal("b", 0);
        let out = sim.signal("out", 0);
        let mut step = 0;
        sim.process("drive", &[a, b], move |ctx: &mut ProcessCtx<'_, i64>| {
            step += 1;
            match step {
                1 => ctx.assign(a, 1),
                2 => ctx.assign(a, 2), // event on `a` after flip re-armed to `b`
                3 => ctx.assign(b, 1),
                _ => return Wait::Done,
            }
            Wait::For(0)
        });
        let wakes = Arc::new(std::sync::Mutex::new(0i64));
        let wakes2 = wakes.clone();
        let mut armed_b = false;
        sim.process("flip", &[out], move |ctx: &mut ProcessCtx<'_, i64>| {
            *wakes2.lock().unwrap() += 1;
            if !armed_b {
                if *ctx.value(a) == 0 {
                    return Wait::Event(vec![a]); // initialization
                }
                armed_b = true;
                return Wait::Event(vec![b]);
            }
            // Woken by `b`; the second `a` event happened while re-armed.
            assert_eq!(*ctx.value(a), 2);
            ctx.assign(out, 1);
            Wait::Done
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(out), 1);
        // init + a-event + b-event; the a=2 event must not wake `flip`.
        assert_eq!(*wakes.lock().unwrap(), 3);
    }

    #[test]
    fn force_on_resolved_signal_routes_through_resolver() {
        // A resolved signal with no process drivers is still forceable,
        // and the forced value passes through the resolution function
        // rather than bypassing it.
        let mut sim: Simulator<i64> = Simulator::new();
        let bus = sim.resolved_signal(
            "bus",
            0,
            Arc::new(|vs: &[i64]| vs.iter().sum::<i64>() + 100),
        );
        let out = sim.signal("out", 0);
        sim.process("follow", &[out], move |ctx: &mut ProcessCtx<'_, i64>| {
            let v = *ctx.value(bus);
            ctx.assign(out, v);
            Wait::on(bus)
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        sim.force(bus, 5).unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(bus), 105);
        assert_eq!(*sim.value(out), 105);
        sim.force(bus, 7).unwrap();
        sim.run().unwrap();
        assert_eq!(*sim.value(bus), 107);
    }

    #[test]
    fn two_events_one_delta_single_wake() {
        let mut sim: Simulator<i64> = Simulator::new();
        let a = sim.signal("a", 0);
        let b = sim.signal("b", 0);
        let c = sim.signal("c", 0);
        sim.process("drive", &[a, b], move |ctx: &mut ProcessCtx<'_, i64>| {
            ctx.assign(a, 1);
            ctx.assign(b, 1);
            Wait::Done
        });
        let mut wakes = 0;
        sim.process("count", &[c], move |ctx: &mut ProcessCtx<'_, i64>| {
            wakes += 1;
            ctx.assign(c, wakes);
            Wait::Event(vec![a, b])
        });
        sim.initialize().unwrap();
        sim.run().unwrap();
        // init wake (1) + one wake for the simultaneous a/b events (2).
        assert_eq!(*sim.value(c), 2);
    }
}
