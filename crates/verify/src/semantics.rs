//! The formal tuple ↔ process semantics of §2.7.
//!
//! The paper derives transfer-process instances from a 9-tuple "in a
//! straightforward manner" and, *vice versa*, reconstructs tuples from the
//! process instances — first as **partial tuples** (one per operand route
//! or write-back, with `-` for the unknown parts, exactly the lists shown
//! in §2.7) and then merged into full tuples using the modules' timing.
//! "These easy mappings lead to simple formal semantics, which form the
//! basis for automatic verification tools."
//!
//! The forward direction is [`TransferTuple::expand`]; this module
//! implements the reverse direction and the round-trip check.

use std::collections::BTreeMap;
use std::fmt;

use clockless_core::{Endpoint, Phase, RtModel, Step, TransferSpec, TransferTuple};

/// Errors from reconstructing tuples out of transfer processes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SemanticsError {
    /// A bus→port process had no matching register→bus process (or vice
    /// versa) in the same step.
    UnmatchedRoute {
        /// Human-readable description of the dangling process.
        process: String,
    },
    /// Two different sources fed the same module port in one step.
    AmbiguousRoute {
        /// Human-readable description.
        detail: String,
    },
    /// A write-back had no initiation `latency` steps earlier.
    OrphanWrite {
        /// The module.
        module: String,
        /// The write step.
        step: Step,
    },
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::UnmatchedRoute { process } => {
                write!(
                    f,
                    "transfer process `{process}` has no matching counterpart"
                )
            }
            SemanticsError::AmbiguousRoute { detail } => write!(f, "ambiguous route: {detail}"),
            SemanticsError::OrphanWrite { module, step } => {
                write!(
                    f,
                    "write-back of `{module}` at step {step} has no initiation"
                )
            }
        }
    }
}

impl std::error::Error for SemanticsError {}

/// Reconstructs **partial tuples** from transfer-process instances — the
/// paper's reverse mapping:
///
/// ```text
/// R1_out_B1_5, B1_ADD_in1_5  →  (R1, B1, -, -, 5, ADD, -, -, -)
/// ADD_out_B1_6, B1_R1_in_6   →  (-, -, -, -, -, ADD, 6, B1, R1)
/// ```
///
/// Operand-route pairs (register→bus at `ra`, bus→port at `rb`) become
/// read-side partials; write pairs (module→bus at `wa`, bus→register at
/// `wb`) become write-side partials with `read_step` left at 0 (unknown).
/// Operation-select processes attach to the read-side partial of their
/// module and step.
///
/// # Errors
///
/// [`SemanticsError`] if processes cannot be paired unambiguously.
pub fn reconstruct_partials(specs: &[TransferSpec]) -> Result<Vec<TransferTuple>, SemanticsError> {
    // Index the ra/wa sources of each (bus, step).
    let mut bus_source: BTreeMap<(String, Step, Phase), Endpoint> = BTreeMap::new();
    for s in specs {
        if let Endpoint::Bus(bus) = &s.dst {
            let prev = bus_source.insert((bus.clone(), s.step, s.phase), s.src.clone());
            if prev.is_some() {
                return Err(SemanticsError::AmbiguousRoute {
                    detail: format!("bus `{bus}` driven twice at step {} {}", s.step, s.phase),
                });
            }
        }
    }

    let mut reads: BTreeMap<(String, Step), TransferTuple> = BTreeMap::new();
    let mut writes: Vec<TransferTuple> = Vec::new();

    for s in specs {
        match (&s.src, &s.dst) {
            // Bus → module port: find the register that fed the bus at ra.
            (Endpoint::Bus(bus), Endpoint::ModIn1(m))
            | (Endpoint::Bus(bus), Endpoint::ModIn2(m)) => {
                let feeder = bus_source
                    .get(&(bus.clone(), s.step, Phase::Ra))
                    .ok_or_else(|| SemanticsError::UnmatchedRoute {
                        process: s.instance_name(),
                    })?;
                let Endpoint::RegOut(reg) = feeder else {
                    return Err(SemanticsError::AmbiguousRoute {
                        detail: format!(
                            "bus `{bus}` fed by non-register source {feeder} at step {}",
                            s.step
                        ),
                    });
                };
                let t = reads
                    .entry((m.clone(), s.step))
                    .or_insert_with(|| TransferTuple::new(s.step, m.clone()));
                if matches!(s.dst, Endpoint::ModIn1(_)) {
                    t.src_a = Some(clockless_core::OperandRoute::new(reg.clone(), bus.clone()));
                } else {
                    t.src_b = Some(clockless_core::OperandRoute::new(reg.clone(), bus.clone()));
                }
                if t.guard.is_none() {
                    t.guard = s.guard.clone();
                }
            }
            // Operation select.
            (Endpoint::ConstOp(op), Endpoint::ModOp(m)) => {
                let t = reads
                    .entry((m.clone(), s.step))
                    .or_insert_with(|| TransferTuple::new(s.step, m.clone()));
                t.op = Some(*op);
            }
            // Bus → register input: find the module that fed the bus at wa.
            (Endpoint::Bus(bus), Endpoint::RegIn(reg)) => {
                let feeder = bus_source
                    .get(&(bus.clone(), s.step, Phase::Wa))
                    .ok_or_else(|| SemanticsError::UnmatchedRoute {
                        process: s.instance_name(),
                    })?;
                let Endpoint::ModOut(module) = feeder else {
                    return Err(SemanticsError::AmbiguousRoute {
                        detail: format!(
                            "bus `{bus}` fed by non-module source {feeder} at step {}",
                            s.step
                        ),
                    });
                };
                // A write-side partial: read side unknown (step 0 stands
                // in for the paper's `-`).
                let mut t = TransferTuple::new(0, module.clone());
                t.write = Some(clockless_core::WriteRoute::new(
                    s.step,
                    bus.clone(),
                    reg.clone(),
                ));
                t.guard = s.guard.clone();
                writes.push(t);
            }
            // The pair-initiating processes; consumed via `bus_source`.
            (_, Endpoint::Bus(_)) => {}
            other => {
                return Err(SemanticsError::AmbiguousRoute {
                    detail: format!("unexpected process shape {other:?}"),
                })
            }
        }
    }

    let mut out: Vec<TransferTuple> = reads.into_values().collect();
    out.extend(writes);
    Ok(out)
}

/// Merges partial tuples into full tuples using the model's module
/// latencies (write step = read step + latency).
///
/// # Errors
///
/// [`SemanticsError::OrphanWrite`] when a write-side partial has no
/// read-side counterpart.
pub fn merge_partials(
    partials: Vec<TransferTuple>,
    model: &RtModel,
) -> Result<Vec<TransferTuple>, SemanticsError> {
    let (mut reads, writes): (Vec<_>, Vec<_>) =
        partials.into_iter().partition(|t| t.read_step != 0);
    for w in writes {
        let write = w.write.clone().expect("write partials carry a write route");
        let mid = model
            .module_by_name(&w.module)
            .ok_or_else(|| SemanticsError::OrphanWrite {
                module: w.module.clone(),
                step: write.step,
            })?;
        let latency = model.modules()[mid.0 as usize].timing.latency();
        let read_step = write.step.checked_sub(latency).filter(|s| *s >= 1).ok_or(
            SemanticsError::OrphanWrite {
                module: w.module.clone(),
                step: write.step,
            },
        )?;
        let host = reads
            .iter_mut()
            .find(|t| t.module == w.module && t.read_step == read_step)
            .ok_or(SemanticsError::OrphanWrite {
                module: w.module.clone(),
                step: write.step,
            })?;
        host.write = Some(write);
        if host.guard.is_none() {
            host.guard = w.guard;
        }
    }
    Ok(reads)
}

/// The round-trip check: expands every tuple of the model into its
/// processes, reconstructs tuples from the processes, and verifies the
/// result equals the original set — §2.7's consistency of the forward and
/// backward mappings.
///
/// # Errors
///
/// Any [`SemanticsError`] if the reconstruction fails or the sets differ.
pub fn roundtrip_check(model: &RtModel) -> Result<(), SemanticsError> {
    let mut specs = Vec::new();
    for t in model.tuples() {
        specs.extend(t.expand());
    }
    let partials = reconstruct_partials(&specs)?;
    let mut reconstructed = merge_partials(partials, model)?;
    let mut original = model.tuples().to_vec();
    let key = |t: &TransferTuple| (t.module.clone(), t.read_step);
    reconstructed.sort_by_key(key);
    original.sort_by_key(key);
    if reconstructed != original {
        return Err(SemanticsError::AmbiguousRoute {
            detail: format!(
                "round trip diverged: {} vs {} tuples",
                reconstructed.len(),
                original.len()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::model::fig1_model;

    #[test]
    fn fig1_partials_match_paper_lists() {
        let model = fig1_model(1, 2);
        let specs: Vec<TransferSpec> = model.tuples().iter().flat_map(|t| t.expand()).collect();
        let partials = reconstruct_partials(&specs).unwrap();
        // One read-side partial (both operands merged) + one write-side.
        assert_eq!(partials.len(), 2);
        let read = partials.iter().find(|t| t.read_step == 5).unwrap();
        assert_eq!(read.to_string(), "(R1,B1,R2,B2,5,ADD,-,-,-)");
        let write = partials.iter().find(|t| t.read_step == 0).unwrap();
        assert_eq!(&write.module, "ADD");
        assert_eq!(write.write.as_ref().unwrap().step, 6);
    }

    #[test]
    fn fig1_roundtrip_succeeds() {
        roundtrip_check(&fig1_model(3, 4)).unwrap();
    }

    #[test]
    fn guarded_and_memory_models_roundtrip() {
        // Guards and storage endpoints travel through the process
        // expansion and back; the reverse mapping must reproduce them.
        let model = clockless_core::text::parse_model(
            "model gm steps 3\nregister R init 1\narray A[2] init 1\nmemory M[2] init 0\n\
             bus B1\nbus B2\nmodule CP ops passa comb\n\
             transfer if R /= 0 then (A[0],B1,-,-,1,CP,1,B2,M[1])\n\
             transfer (M[0],B1,-,-,2,CP,2,B2,R)\n",
        )
        .unwrap();
        roundtrip_check(&model).unwrap();
    }

    #[test]
    fn unmatched_bus_to_port_is_error() {
        // A bus→port process without the register→bus counterpart.
        let spec = TransferSpec {
            step: 2,
            phase: Phase::Rb,
            src: Endpoint::Bus("B1".into()),
            dst: Endpoint::ModIn1("ADD".into()),
            guard: None,
        };
        assert!(matches!(
            reconstruct_partials(&[spec]),
            Err(SemanticsError::UnmatchedRoute { .. })
        ));
    }

    #[test]
    fn orphan_write_is_error() {
        let model = fig1_model(1, 2);
        let mut t = TransferTuple::new(0, "ADD");
        t.write = Some(clockless_core::WriteRoute::new(6, "B1", "R1"));
        assert!(matches!(
            merge_partials(vec![t], &model),
            Err(SemanticsError::OrphanWrite { .. })
        ));
    }
}
