//! Running elaborated models and harvesting results.
//!
//! [`RtSimulation`] owns an elaborated model plus its kernel simulator and
//! provides RT-level observation: current step/phase, register and bus
//! values, per-commit logs and the conflict report promised by §2.7.

use clockless_kernel::{KernelError, SimStats, Simulator, StepOutcome};

use crate::diag::{Conflict, ConflictReport, ConflictSite};
use crate::elaborate::{elaborate, ElaborateOptions, SignalLayout, SignalRole};
use crate::model::RtModel;
use crate::phase::{PhaseTime, Step, PHASES_PER_STEP};
use crate::value::Value;

/// A value committed into a register, located in control-step time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterCommit {
    /// The register's name.
    pub register: String,
    /// The control step whose `cr` phase stored the value.
    pub step: Step,
    /// The stored value.
    pub value: Value,
}

/// Summary of a completed run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Kernel statistics (delta cycles, activations, events…).
    pub stats: SimStats,
    /// Final value of every register, in declaration order.
    pub registers: Vec<(String, Value)>,
    /// Conflict report (`None` when the run was not traced).
    pub conflicts: Option<ConflictReport>,
}

impl RunSummary {
    /// Final value of a register by name.
    pub fn register(&self, name: &str) -> Option<Value> {
        self.registers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// An elaborated, initialized clock-free RT simulation.
///
/// # Examples
///
/// Running the paper's Fig. 1 example end to end:
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_core::run::RtSimulation;
/// use clockless_core::value::Value;
///
/// let model = fig1_model(3, 4);
/// let mut sim = RtSimulation::new(&model)?;
/// let summary = sim.run_to_completion()?;
/// // R1 := R1 + R2 executed at steps 5/6.
/// assert_eq!(summary.register("R1"), Some(Value::Num(7)));
/// // One control step costs exactly 6 delta cycles (+1 initialization).
/// assert_eq!(summary.stats.delta_cycles, 1 + 6 * 7);
/// # Ok::<(), clockless_kernel::KernelError>(())
/// ```
#[derive(Debug)]
pub struct RtSimulation {
    model: RtModel,
    sim: Simulator<Value>,
    layout: SignalLayout,
}

impl RtSimulation {
    /// Elaborates and initializes `model` with default options
    /// (no tracing).
    ///
    /// # Errors
    ///
    /// Propagates kernel elaboration errors.
    pub fn new(model: &RtModel) -> Result<RtSimulation, KernelError> {
        Self::with_options(model, ElaborateOptions::default())
    }

    /// Elaborates and initializes `model` with tracing enabled, making
    /// [`conflicts`](Self::conflicts) and
    /// [`register_commits`](Self::register_commits) available.
    ///
    /// # Errors
    ///
    /// Propagates kernel elaboration errors.
    pub fn traced(model: &RtModel) -> Result<RtSimulation, KernelError> {
        Self::with_options(model, ElaborateOptions::traced())
    }

    /// Elaborates and initializes `model` with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates kernel elaboration errors.
    pub fn with_options(
        model: &RtModel,
        options: ElaborateOptions,
    ) -> Result<RtSimulation, KernelError> {
        let (mut sim, layout) = elaborate(model, options);
        sim.initialize()?;
        Ok(RtSimulation {
            model: model.clone(),
            sim,
            layout,
        })
    }

    /// The model this simulation was elaborated from.
    pub fn model(&self) -> &RtModel {
        &self.model
    }

    /// The signal layout (for low-level observation).
    pub fn layout(&self) -> &SignalLayout {
        &self.layout
    }

    /// Direct access to the kernel simulator.
    pub fn kernel(&self) -> &Simulator<Value> {
        &self.sim
    }

    /// Mutable kernel access for in-crate machinery (the check module's
    /// commit observation hook).
    pub(crate) fn kernel_mut(&mut self) -> &mut Simulator<Value> {
        &mut self.sim
    }

    /// Executes one delta cycle.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (notably delta overflow).
    pub fn step_delta(&mut self) -> Result<StepOutcome, KernelError> {
        self.sim.step_delta()
    }

    /// Executes one full control step (six delta cycles), or less if the
    /// simulation quiesces first. Returns `true` while activity remains.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn step_control_step(&mut self) -> Result<bool, KernelError> {
        for _ in 0..PHASES_PER_STEP {
            if self.sim.step_delta()? == StepOutcome::Quiescent {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Sets the kernel's per-instant delta-cycle budget (default 10^8).
    ///
    /// A well-formed RT model quiesces after exactly
    /// `1 + 6 × CS_MAX` delta cycles, so batch engines and fault
    /// campaigns set a tight budget here to turn runaway mutants into
    /// [`KernelError::DeltaOverflow`] instead of hung workers.
    pub fn set_delta_limit(&mut self, limit: u64) {
        self.sim.set_delta_limit(limit);
    }

    /// Runs to quiescence and summarizes.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors.
    pub fn run_to_completion(&mut self) -> Result<RunSummary, KernelError> {
        let stats = self.sim.run()?;
        Ok(RunSummary {
            stats,
            registers: self.registers(),
            conflicts: self.conflicts(),
        })
    }

    /// Runs to quiescence like
    /// [`run_to_completion`](Self::run_to_completion), but aborts with
    /// [`KernelError::WallBudgetExceeded`] once the wall clock passes
    /// `deadline` — the enforcement point for the fleet engine's
    /// `--wall-budget-ms` option.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors, including the budget timeout.
    pub fn run_to_completion_deadlined(
        &mut self,
        deadline: std::time::Instant,
    ) -> Result<RunSummary, KernelError> {
        let stats = self.sim.run_deadlined(deadline)?;
        Ok(RunSummary {
            stats,
            registers: self.registers(),
            conflicts: self.conflicts(),
        })
    }

    /// The current control step and phase, or `None` during
    /// initialization (before step 1 begins).
    pub fn phase_time(&self) -> Option<PhaseTime> {
        let step = self.sim.value(self.layout.cs).num()? as Step;
        if step == 0 {
            return None;
        }
        let ph = self.sim.value(self.layout.ph).num()? as u8;
        Some(PhaseTime::new(step, crate::phase::Phase::from_index(ph)))
    }

    /// Current value on a register's output port.
    pub fn register_value(&self, name: &str) -> Option<Value> {
        let id = self.model.register_by_name(name)?;
        Some(*self.sim.value(self.layout.reg_out[id.0 as usize]))
    }

    /// Current value on a bus.
    pub fn bus_value(&self, name: &str) -> Option<Value> {
        let id = self.model.bus_by_name(name)?;
        Some(*self.sim.value(self.layout.bus[id.0 as usize]))
    }

    /// Current value on a module's output port.
    pub fn module_out(&self, name: &str) -> Option<Value> {
        let id = self.model.module_by_name(name)?;
        Some(*self.sim.value(self.layout.mod_out[id.0 as usize]))
    }

    /// All register values, in declaration order, followed by every
    /// memory word (`M[0]`, `M[1]`, …) in declaration then address order.
    pub fn registers(&self) -> Vec<(String, Value)> {
        let mut out: Vec<(String, Value)> = self
            .model
            .registers()
            .iter()
            .enumerate()
            .map(|(i, r)| (r.name.clone(), *self.sim.value(self.layout.reg_out[i])))
            .collect();
        for (mi, m) in self.model.memories().iter().enumerate() {
            for i in 0..m.len {
                out.push((
                    m.word_name(i),
                    *self.sim.value(self.layout.mem_word[mi][i as usize]),
                ));
            }
        }
        out
    }

    /// Registers currently holding `ILLEGAL` — works without tracing.
    pub fn poisoned_registers(&self) -> Vec<String> {
        self.registers()
            .into_iter()
            .filter(|(_, v)| v.is_illegal())
            .map(|(n, _)| n)
            .collect()
    }

    /// Kernel statistics so far.
    pub fn stats(&self) -> SimStats {
        self.sim.stats()
    }

    /// A combined schedule-plus-kernel statistics report (the payload of
    /// `clockless stats --json`). Most useful after the run has finished;
    /// call it mid-run for a snapshot of the counters so far.
    pub fn stats_report(&self) -> crate::stats::RunStatsReport {
        crate::stats::RunStatsReport {
            model: self.model.name().to_string(),
            schedule: crate::stats::model_stats(&self.model),
            kernel: self.sim.stats(),
            activations: self.activation_counts(),
        }
    }

    /// Per-process activation tallies `(process name, resumptions)`, in
    /// elaboration order. The heaviest entries show where simulation time
    /// goes — for the paper's models that is the `TRANS` processes of the
    /// busiest control steps.
    pub fn activation_counts(&self) -> Vec<(String, u64)> {
        self.sim
            .process_names()
            .map(str::to_string)
            .zip(self.sim.activation_counts().iter().copied())
            .collect()
    }

    /// The conflict report: every `ILLEGAL` occurrence, located to the
    /// step and phase at which it became visible (§2.7). `None` when the
    /// simulation was not traced.
    pub fn conflicts(&self) -> Option<ConflictReport> {
        let trace = self.sim.trace()?;
        let mut conflicts = Vec::new();
        for e in trace.events() {
            if e.value != Value::Illegal {
                continue;
            }
            let Some(visible_at) = PhaseTime::from_active_delta(e.at.delta) else {
                continue;
            };
            let (site, name) = match self.layout.role(e.signal) {
                SignalRole::Bus(n) => (ConflictSite::Bus, n.clone()),
                SignalRole::ModIn1(n) | SignalRole::ModIn2(n) => {
                    (ConflictSite::ModulePort, n.clone())
                }
                SignalRole::ModOp(n) => (ConflictSite::ModuleOpPort, n.clone()),
                SignalRole::ModOut(n) => (ConflictSite::ModuleOut, n.clone()),
                SignalRole::RegIn(n) => (ConflictSite::RegisterPort, n.clone()),
                SignalRole::RegOut(n) => (ConflictSite::RegisterValue, n.clone()),
                SignalRole::MemWin(n) | SignalRole::MemWaddr(n) => {
                    (ConflictSite::MemoryPort, n.clone())
                }
                SignalRole::MemWord { mem, index } => (
                    ConflictSite::MemoryWord,
                    SignalRole::mem_word_name(mem, *index),
                ),
                SignalRole::ControlStep | SignalRole::PhaseSignal => continue,
            };
            conflicts.push(Conflict {
                site,
                name,
                visible_at,
            });
        }
        Some(ConflictReport { conflicts })
    }

    /// The observable register commits: each change of a register's
    /// output port or memory word, attributed to the control step whose
    /// `cr` phase stored it. `None` when the simulation was not traced.
    ///
    /// A commit that stores the value already held is invisible (no signal
    /// event) and therefore not listed; functional comparisons should
    /// compare final values as well.
    pub fn register_commits(&self) -> Option<Vec<RegisterCommit>> {
        let trace = self.sim.trace()?;
        let mut commits = Vec::new();
        for e in trace.events() {
            let register = match self.layout.role(e.signal) {
                SignalRole::RegOut(name) => name.clone(),
                SignalRole::MemWord { mem, index } => SignalRole::mem_word_name(mem, *index),
                _ => continue,
            };
            let Some(pt) = PhaseTime::from_active_delta(e.at.delta) else {
                continue; // initial value, not a commit
            };
            // The output changes in the delta after cr, i.e. at ra of the
            // following step; attribute the commit to the storing step.
            commits.push(RegisterCommit {
                register,
                step: pt.step - 1,
                value: e.value,
            });
        }
        Some(commits)
    }

    /// Renders the recorded waveform as a VCD document, or `None` when
    /// the simulation was not traced.
    pub fn to_vcd(&self) -> Option<String> {
        let trace = self.sim.trace()?;
        let names: Vec<String> = self.sim.signal_names().map(str::to_string).collect();
        Some(trace.to_vcd(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fig1_model;
    use crate::op::Op;
    use crate::phase::Phase;
    use crate::resource::{ModuleDecl, ModuleTiming};
    use crate::tuples::TransferTuple;

    #[test]
    fn fig1_computes_r1_plus_r2() {
        let model = fig1_model(3, 4);
        let mut sim = RtSimulation::new(&model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        assert_eq!(summary.register("R1"), Some(Value::Num(7)));
        assert_eq!(summary.register("R2"), Some(Value::Num(4)));
    }

    #[test]
    fn fig1_costs_six_deltas_per_step() {
        let model = fig1_model(1, 1);
        let mut sim = RtSimulation::new(&model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        // §2.2: "The complete simulation takes CS_MAX × 6 delta simulation
        // cycles" — plus the initialization cycle our kernel counts.
        assert_eq!(
            summary.stats.delta_cycles,
            1 + PHASES_PER_STEP * model.cs_max() as u64
        );
    }

    #[test]
    fn phase_time_tracks_controller() {
        let model = fig1_model(0, 0);
        let mut sim = RtSimulation::new(&model).unwrap();
        assert_eq!(sim.phase_time(), None);
        sim.step_delta().unwrap(); // initial execution applied
        sim.step_delta().unwrap(); // CS=1, PH=ra visible
        assert_eq!(sim.phase_time(), Some(PhaseTime::new(1, Phase::Ra)));
    }

    #[test]
    fn step_control_step_advances_one_step() {
        let model = fig1_model(0, 0);
        let mut sim = RtSimulation::new(&model).unwrap();
        sim.step_delta().unwrap(); // init execution, CS/PH still (0, cr)
        assert!(sim.step_control_step().unwrap());
        // Six deltas make ra..cr of step 1 visible in turn.
        assert_eq!(sim.phase_time(), Some(PhaseTime::new(1, Phase::Cr)));
        assert!(sim.step_control_step().unwrap());
        assert_eq!(sim.phase_time(), Some(PhaseTime::new(2, Phase::Cr)));
    }

    #[test]
    fn traced_run_reports_commits() {
        let model = fig1_model(10, 20);
        let mut sim = RtSimulation::traced(&model).unwrap();
        sim.run_to_completion().unwrap();
        let commits = sim.register_commits().unwrap();
        assert_eq!(
            commits,
            vec![RegisterCommit {
                register: "R1".into(),
                step: 6,
                value: Value::Num(30)
            }]
        );
    }

    #[test]
    fn clean_run_has_clean_conflict_report() {
        let model = fig1_model(1, 2);
        let mut sim = RtSimulation::traced(&model).unwrap();
        let summary = sim.run_to_completion().unwrap();
        assert!(summary.conflicts.unwrap().is_clean());
        assert!(sim.poisoned_registers().is_empty());
    }

    /// Two transfers drive B1 in the same ra phase: the bus conflict must
    /// surface as ILLEGAL at rb of that step and poison the destination.
    #[test]
    fn bus_conflict_is_localized() {
        let mut m = RtModel::new("conflict", 6);
        m.add_register_init("R1", Value::Num(1)).unwrap();
        m.add_register_init("R2", Value::Num(2)).unwrap();
        m.add_register("R3").unwrap();
        m.add_bus("B1").unwrap();
        m.add_bus("B2").unwrap();
        m.add_module(ModuleDecl::single(
            "ADD",
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
        m.add_module(ModuleDecl::single(
            "CP",
            Op::PassA,
            ModuleTiming::Combinational,
        ))
        .unwrap();
        // Transfer 1 routes R1 over B1 at step 3 (read) for ADD.
        m.add_transfer(
            TransferTuple::new(3, "ADD")
                .src_a("R1", "B1")
                .src_b("R2", "B2")
                .write(4, "B2", "R3"),
        )
        .unwrap();
        // Transfer 2 also routes R2 over B1 at step 3 — the conflict.
        m.add_transfer(
            TransferTuple::new(3, "CP")
                .src_a("R2", "B1")
                .write(3, "B2", "R3"),
        )
        .unwrap();

        let mut sim = RtSimulation::traced(&m).unwrap();
        sim.run_to_completion().unwrap();
        let report = sim.conflicts().unwrap();
        assert!(!report.is_clean());
        let first = report.first().unwrap();
        assert_eq!(first.site, ConflictSite::Bus);
        assert_eq!(first.name, "B1");
        assert_eq!(first.visible_at, PhaseTime::new(3, Phase::Rb));
    }

    /// Write-back collisions localize to the *write* phases: a bus driven
    /// twice at `wa` turns ILLEGAL at `wb`, the double-driven register
    /// input port turns ILLEGAL at `cr`, and the poisoned value is stored
    /// — covering the paper's claim that diagnosis names the exact step
    /// and phase for every phase class, not just the read side.
    #[test]
    fn write_conflict_is_localized_to_write_phases() {
        let mut m = RtModel::new("wclash", 4);
        m.add_register_init("R1", Value::Num(1)).unwrap();
        m.add_register_init("R2", Value::Num(2)).unwrap();
        m.add_register("RT").unwrap();
        m.add_bus("BA").unwrap();
        m.add_bus("BB").unwrap();
        m.add_bus("BW").unwrap();
        for name in ["CP1", "CP2"] {
            m.add_module(ModuleDecl::single(
                name,
                Op::PassA,
                ModuleTiming::Combinational,
            ))
            .unwrap();
        }
        // Both transfers write bus BW into RT in step 2 — colliding at wa
        // (bus) and wb (register port), not at the read phases.
        m.add_transfer(
            TransferTuple::new(2, "CP1")
                .src_a("R1", "BA")
                .write(2, "BW", "RT"),
        )
        .unwrap();
        m.add_transfer(
            TransferTuple::new(2, "CP2")
                .src_a("R2", "BB")
                .write(2, "BW", "RT"),
        )
        .unwrap();

        let mut sim = RtSimulation::traced(&m).unwrap();
        sim.run_to_completion().unwrap();
        let report = sim.conflicts().unwrap();
        // Root cause: the bus collision driven at wa, visible at wb.
        let first = report.first().unwrap();
        assert_eq!(first.site, ConflictSite::Bus);
        assert_eq!(first.name, "BW");
        assert_eq!(first.visible_at, PhaseTime::new(2, Phase::Wb));
        // Propagation: the register input port turns ILLEGAL at cr…
        assert!(report.on("RT").any(|c| c.site == ConflictSite::RegisterPort
            && c.visible_at == PhaseTime::new(2, Phase::Cr)));
        // …and the stored conflict poisons the register itself.
        assert_eq!(sim.register_value("RT"), Some(Value::Illegal));
        assert_eq!(sim.poisoned_registers(), vec!["RT".to_string()]);
        // The read side stayed clean: no conflict before wb.
        assert!(report
            .conflicts
            .iter()
            .all(|c| c.visible_at >= PhaseTime::new(2, Phase::Wb)));
    }

    #[test]
    fn delta_limit_plumbs_through_to_the_kernel() {
        let model = fig1_model(3, 4);
        // A fig. 1 run needs 1 + 6×7 deltas; a budget of 10 must abort.
        let mut sim = RtSimulation::new(&model).unwrap();
        sim.set_delta_limit(10);
        let err = sim.run_to_completion().expect_err("budget exceeded");
        assert!(matches!(err, KernelError::DeltaOverflow { limit: 10, .. }));
        // A budget of exactly 1 + 6×CS_MAX suffices.
        let mut sim = RtSimulation::new(&model).unwrap();
        sim.set_delta_limit(1 + PHASES_PER_STEP * model.cs_max() as u64);
        let summary = sim.run_to_completion().expect("exact budget suffices");
        assert_eq!(summary.register("R1"), Some(Value::Num(7)));
    }

    #[test]
    fn vcd_export_available_when_traced() {
        let model = fig1_model(1, 2);
        let mut sim = RtSimulation::traced(&model).unwrap();
        sim.run_to_completion().unwrap();
        let vcd = sim.to_vcd().unwrap();
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("R1_out"));

        let mut untraced = RtSimulation::new(&model).unwrap();
        untraced.run_to_completion().unwrap();
        assert!(untraced.to_vcd().is_none());
    }
}
