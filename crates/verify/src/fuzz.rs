//! Seeded differential fuzzing over the whole construct surface.
//!
//! Two deterministic generators produce thousands of small models —
//! random tuple soups drawing on every storage kind (plain registers,
//! register arrays, memories with constant and register-indirect
//! addressing) and guarded transfers, plus random dataflow graphs pushed
//! through the HLS pipeline and decorated with random guards. Every model
//! is then held against a battery of oracles:
//!
//! 1. **Backend equivalence** — a three-way differential: the
//!    interpreted delta kernel against the compiled phase-schedule
//!    walker at **every optimization level** (`-O0` raw walk, `-O1`
//!    fused/specialized, `-O2` folded with dead spurs eliminated), all
//!    byte-identical on every observable
//!    ([`crate::equiv::backend_equiv`]).
//! 2. **Text round trip** — the canonical `.rtl` rendering must re-parse
//!    to the identical canonical rendering.
//! 3. **VHDL round trip** — the §2.7 emission must re-import to the same
//!    declarations and tuples.
//! 4. **Clocked + handshake equivalence** — when the model is inside the
//!    §4 subset (no memories, step-exclusive routing), the clocked
//!    translation and the 4-phase handshake rendering must commit the
//!    same values ([`clockless_clocked::check_clocked_equivalence`]).
//!
//! Any disagreement is a real bug in one of the layers and is reported
//! as a [`FuzzDivergence`] carrying the seed that reproduces it.

use std::collections::HashMap;
use std::fmt;

use clockless_clocked::{
    check_clocked_equivalence, check_handshake_equivalence, ClockScheme, ClockedDesign,
};
use clockless_core::text::{parse_model, to_text};
use clockless_core::vhdl::emit_vhdl;
use clockless_core::{
    CmpOp, Guard, GuardClause, GuardOperand, ModuleDecl, ModuleTiming, Op, RtModel, Step,
    TransferTuple, Value,
};
use clockless_hls::{synthesize, ResourceSet};

use crate::equiv::backend_equiv;
use crate::vhdl_import::model_from_vhdl;

/// splitmix64 — the same tiny deterministic generator the fault
/// campaign uses for its sampling decisions.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform draw from `lo..=hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num`/`den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// Builds a random guard over `regs` (plain registers and array
/// elements — anything [`Guard::registers`] may legally name).
fn gen_guard(rng: &mut Rng, regs: &[String]) -> Guard {
    const CMPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
    let nclauses = 1 + rng.below(2);
    let clauses = (0..nclauses)
        .map(|_| GuardClause {
            lhs: GuardOperand::Reg(rng.pick(regs).clone()),
            cmp: *rng.pick(&CMPS),
            rhs: if rng.chance(1, 3) {
                GuardOperand::Reg(rng.pick(regs).clone())
            } else {
                GuardOperand::Const(rng.range(-4, 4))
            },
        })
        .collect();
    Guard {
        negated: rng.chance(1, 4),
        clauses,
    }
}

/// Generates a random tuple-soup model from `seed`. The same seed always
/// yields the same model.
///
/// The soup draws from every construct the front end knows: plain
/// registers, a register array, a memory (with both constant-indexed and
/// register-indirect endpoints), multi-op modules of all three timing
/// classes, and guarded transfers. Tuples are placed by rejection
/// sampling against [`RtModel::add_transfer`] validation, so the result
/// is always a well-formed model (possibly with *runtime* bus conflicts,
/// which the engines must diagnose identically).
pub fn generate_model(seed: u64) -> RtModel {
    let mut rng = Rng::new(seed);
    let steps = 3 + rng.below(6) as Step; // 3..=8
    let mut m = RtModel::new(format!("fuzz_{seed}"), steps);

    let nregs = 2 + rng.below(4); // 2..=5
    for i in 0..nregs {
        m.add_register_init(format!("R{i}"), Value::Num(rng.range(-8, 8)))
            .expect("fresh register");
    }
    // `storage` holds read/write endpoints; `guardable` the names a guard
    // may compare (memory words are not registers, so they stay out).
    let mut storage: Vec<String> = (0..nregs).map(|i| format!("R{i}")).collect();
    if rng.chance(1, 2) {
        let len = 2 + rng.below(2) as u32;
        m.add_array("A", len, Value::Num(rng.range(0, 9)))
            .expect("fresh array");
        storage.extend((0..len).map(|i| format!("A[{i}]")));
    }
    let guardable = storage.clone();
    if rng.chance(1, 3) {
        let len = 2 + rng.below(3) as u32;
        m.add_memory("M", len, Value::Num(rng.range(0, 9)))
            .expect("fresh memory");
        storage.extend((0..len).map(|i| format!("M[{i}]")));
        // One register-indirect port; the register's runtime value may
        // stray out of range, exercising the poisoning semantics.
        storage.push(format!("M[R{}]", rng.below(nregs)));
    }

    let nbuses = 3 + rng.below(3);
    for i in 0..nbuses {
        m.add_bus(format!("B{i}")).expect("fresh bus");
    }

    const BINARY: [Op; 4] = [Op::Add, Op::Sub, Op::Mul, Op::Min];
    let nmods = 1 + rng.below(2);
    let mut mod_ops: Vec<Vec<Op>> = Vec::new();
    for i in 0..nmods {
        let timing = match rng.below(4) {
            0 => ModuleTiming::Pipelined {
                latency: 1 + rng.below(2) as u32,
            },
            1 => ModuleTiming::Sequential {
                latency: 1 + rng.below(2) as u32,
            },
            _ => ModuleTiming::Combinational,
        };
        let mut ops = vec![*rng.pick(&BINARY)];
        if rng.chance(1, 2) {
            ops.push(Op::PassA);
        }
        ops.dedup();
        mod_ops.push(ops.clone());
        m.add_module(ModuleDecl::multi(format!("F{i}"), ops, timing))
            .expect("fresh module");
    }

    let want = 2 + rng.below(5);
    let mut placed = 0;
    for _ in 0..60 {
        if placed >= want {
            break;
        }
        let mi = rng.below(nmods) as usize;
        let latency = m.modules()[mi].timing.latency();
        let max_read = steps.saturating_sub(latency);
        if max_read < 1 {
            continue;
        }
        let read_step = 1 + rng.below(max_read as u64) as Step;
        let op = *rng.pick(&mod_ops[mi]);
        let mut t = TransferTuple::new(read_step, format!("F{mi}"));
        if mod_ops[mi].len() > 1 {
            t = t.op(op);
        }
        t = t.src_a(
            rng.pick(&storage).clone(),
            format!("B{}", rng.below(nbuses)),
        );
        if op != Op::PassA {
            t = t.src_b(
                rng.pick(&storage).clone(),
                format!("B{}", rng.below(nbuses)),
            );
        }
        if rng.chance(3, 4) {
            t = t.write(
                read_step + latency,
                format!("B{}", rng.below(nbuses)),
                rng.pick(&storage).clone(),
            );
        }
        if rng.chance(1, 2) {
            t = t.guard(gen_guard(&mut rng, &guardable));
        }
        if m.add_transfer(t).is_ok() {
            placed += 1;
        }
    }
    if placed == 0 {
        // Degenerate draw: fall back to one guaranteed-valid transfer.
        let latency = m.modules()[0].timing.latency();
        let t = TransferTuple::new(1, "F0")
            .op(mod_ops[0][0])
            .src_a("R0", "B0")
            .src_b("R1", "B1")
            .write(1 + latency, "B2", "R0");
        m.add_transfer(t).expect("fallback transfer");
    }
    m
}

/// Generates a random dataflow graph, synthesizes it through the HLS
/// pipeline, and decorates some of the resulting transfers with random
/// guards — the "guarded DFG" half of the fuzz population.
pub fn generate_hls_model(seed: u64) -> RtModel {
    let mut rng = Rng::new(seed ^ 0xD1F7_F00D_5EED_CAFE);
    let nodes = 4 + rng.below(10) as usize;
    let inputs = 2 + rng.below(3) as usize;
    let g = clockless_hls::random_dag(seed | 1, nodes, inputs);
    let names = g.inputs();
    let values: HashMap<&str, i64> = names
        .iter()
        .map(|n| (n.as_str(), rng.range(-50, 50)))
        .collect();
    let resources = ResourceSet::unconstrained(&g);
    let syn = synthesize(&g, &resources, &values).expect("random DAG synthesizes");
    let mut model = syn.model;
    let regs: Vec<String> = model.registers().iter().map(|r| r.name.clone()).collect();
    for i in 0..model.tuples().len() {
        if rng.chance(1, 3) {
            let mut t = model.tuples()[i].clone();
            t.guard = Some(gen_guard(&mut rng, &regs));
            model
                .replace_transfer_unchecked(i, t)
                .expect("guard decoration keeps the tuple valid");
        }
    }
    model
}

/// One disagreement found by the campaign: the seed reproduces it,
/// `oracle` names the check that failed, and `model` carries the full
/// canonical `.rtl` text of the offending model.
#[derive(Debug, Clone)]
pub struct FuzzDivergence {
    /// The per-case seed (`base_seed + index`).
    pub seed: u64,
    /// Which oracle disagreed: `backend`, `text-parse`, `text-roundtrip`,
    /// `vhdl-emit`, `vhdl-parse`, `vhdl-roundtrip`, `clocked` or
    /// `handshake`.
    pub oracle: &'static str,
    /// Canonical text of the model that exposed the divergence.
    pub model: String,
    /// The oracle's own rendering of the disagreement.
    pub detail: String,
}

impl fmt::Display for FuzzDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {}: oracle `{}` diverged: {}",
            self.seed, self.oracle, self.detail
        )
    }
}

/// Outcome of a fuzz campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Models generated and checked.
    pub checked: usize,
    /// How many came from the HLS pipeline (the rest are tuple soups).
    pub hls_models: usize,
    /// How many carried at least one guarded transfer.
    pub guarded_models: usize,
    /// How many declared a memory.
    pub memory_models: usize,
    /// How many declared a register array.
    pub array_models: usize,
    /// How many also ran the clocked + handshake equivalence legs
    /// (models inside the §4 subset).
    pub clocked_checked: usize,
    /// Divergences found (capped at [`FuzzReport::MAX_KEPT`] kept
    /// instances; `divergence_count` keeps the true total).
    pub divergences: Vec<FuzzDivergence>,
    /// Total number of divergences observed.
    pub divergence_count: usize,
}

impl FuzzReport {
    /// At most this many divergences are kept in full.
    pub const MAX_KEPT: usize = 20;

    /// `true` when every oracle agreed on every model.
    pub fn clean(&self) -> bool {
        self.divergence_count == 0
    }

    fn record(&mut self, d: FuzzDivergence) {
        self.divergence_count += 1;
        if self.divergences.len() < Self::MAX_KEPT {
            self.divergences.push(d);
        }
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let esc = |s: &str| {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                    c => vec![c],
                })
                .collect::<String>()
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"checked\": {},", self.checked);
        let _ = writeln!(out, "  \"hls_models\": {},", self.hls_models);
        let _ = writeln!(out, "  \"guarded_models\": {},", self.guarded_models);
        let _ = writeln!(out, "  \"memory_models\": {},", self.memory_models);
        let _ = writeln!(out, "  \"array_models\": {},", self.array_models);
        let _ = writeln!(out, "  \"clocked_checked\": {},", self.clocked_checked);
        let _ = writeln!(out, "  \"divergence_count\": {},", self.divergence_count);
        let _ = writeln!(out, "  \"divergences\": [");
        for (i, d) in self.divergences.iter().enumerate() {
            let comma = if i + 1 < self.divergences.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"seed\": {}, \"oracle\": \"{}\", \"detail\": \"{}\"}}{comma}",
                d.seed,
                d.oracle,
                esc(&d.detail)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzzed {} models ({} hls, {} guarded, {} with memories, {} with arrays, {} clocked-checked)",
            self.checked,
            self.hls_models,
            self.guarded_models,
            self.memory_models,
            self.array_models,
            self.clocked_checked,
        )?;
        if self.clean() {
            writeln!(f, "no divergences")
        } else {
            writeln!(f, "{} DIVERGENCE(S):", self.divergence_count)?;
            for d in &self.divergences {
                writeln!(f, "  {d}")?;
            }
            Ok(())
        }
    }
}

/// Runs every oracle against one model, reporting the first divergence
/// per oracle family. Returns whether the clocked legs ran.
///
/// `allow_emit_skip` is set for HLS-derived models, whose random DAGs
/// may draw DSP operations outside the documented VHDL subset — the
/// emitter's rejection is then a skip, not a divergence. Tuple soups
/// only use in-subset operations, so for them an emit failure counts.
fn check_model(model: &RtModel, seed: u64, allow_emit_skip: bool, report: &mut FuzzReport) -> bool {
    let text = to_text(model);
    let diverge = |oracle: &'static str, detail: String| FuzzDivergence {
        seed,
        oracle,
        model: text.clone(),
        detail,
    };

    // 1. The execution engines must be byte-identical: interpreter vs
    //    the compiled walker at -O0, -O1 and -O2 (the optimizer's whole
    //    pass pipeline differentially checked on every generated model).
    if let Err(d) = backend_equiv(model) {
        report.record(diverge("backend", d.to_string()));
    }

    // 2. Canonical text must be a parse/print fixed point.
    match parse_model(&text) {
        Err(e) => report.record(diverge("text-parse", e.to_string())),
        Ok(back) => {
            let reprinted = to_text(&back);
            if reprinted != text {
                report.record(diverge(
                    "text-roundtrip",
                    format!("reprinted differently:\n{reprinted}"),
                ));
            }
        }
    }

    // 3. VHDL emission must re-import to the same model. The §2.7
    //    reconstruction the importer runs is only defined for models
    //    whose routing is unambiguous — two drives of one bus or module
    //    port in the same phase have no unique tuple decomposition — so
    //    statically conflicted soups skip this oracle (they still run
    //    through the backend and text oracles above).
    let statically_clean = crate::conflicts::static_conflicts(model).is_empty();
    match emit_vhdl(model) {
        _ if !statically_clean => {}
        Err(_) if allow_emit_skip => {}
        Err(e) => report.record(diverge("vhdl-emit", e.to_string())),
        Ok(vhdl) => match model_from_vhdl(&vhdl) {
            Err(e) => report.record(diverge("vhdl-parse", e.to_string())),
            Ok(back) => {
                let mut a = back.tuples().to_vec();
                let mut b = model.tuples().to_vec();
                let key = |t: &TransferTuple| (t.module.clone(), t.read_step);
                a.sort_by_key(key);
                b.sort_by_key(key);
                if back.registers() != model.registers()
                    || back.arrays() != model.arrays()
                    || back.memories() != model.memories()
                    || a != b
                {
                    report.record(diverge(
                        "vhdl-roundtrip",
                        "imported declarations or tuples differ".into(),
                    ));
                }
            }
        },
    }

    // 4. Clocked + handshake equivalence, for models in the §4 subset.
    //    Routing conflicts at step granularity are a legitimate static
    //    rejection (the abstract model multiplexes within a step), so a
    //    translation error is a skip, not a divergence.
    if ClockedDesign::translate(model, ClockScheme::default()).is_err() {
        return false;
    }
    match check_clocked_equivalence(model, ClockScheme::default()) {
        Err(e) => report.record(diverge("clocked", e.to_string())),
        Ok(r) if !r.equivalent() => report.record(diverge("clocked", r.to_string())),
        Ok(_) => {}
    }
    match check_handshake_equivalence(model) {
        Err(e) => report.record(diverge("handshake", e.to_string())),
        Ok(r) if !r.equivalent() => report.record(diverge("handshake", r.to_string())),
        Ok(_) => {}
    }
    true
}

/// Runs a differential fuzz campaign: `count` models derived from
/// `seed`, one quarter through the HLS pipeline, the rest as tuple
/// soups.
pub fn run_fuzz(seed: u64, count: usize) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..count {
        let case_seed = seed.wrapping_add(i as u64);
        let is_hls = i % 4 == 3;
        let model = if is_hls {
            report.hls_models += 1;
            generate_hls_model(case_seed)
        } else {
            generate_model(case_seed)
        };
        if model.tuples().iter().any(|t| t.guard.is_some()) {
            report.guarded_models += 1;
        }
        if !model.memories().is_empty() {
            report.memory_models += 1;
        }
        if !model.arrays().is_empty() {
            report.array_models += 1;
        }
        if check_model(&model, case_seed, is_hls, &mut report) {
            report.clocked_checked += 1;
        }
        report.checked += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0, 1, 42, 0xDEAD_BEEF] {
            assert_eq!(
                to_text(&generate_model(seed)),
                to_text(&generate_model(seed))
            );
        }
        assert_eq!(
            to_text(&generate_hls_model(7)),
            to_text(&generate_hls_model(7))
        );
    }

    #[test]
    fn campaign_covers_every_construct_and_stays_clean() {
        let report = run_fuzz(0xC10C_1E55, 120);
        assert_eq!(report.checked, 120);
        assert!(report.guarded_models > 10, "{report}");
        assert!(report.memory_models > 5, "{report}");
        assert!(report.array_models > 10, "{report}");
        assert!(report.hls_models == 30, "{report}");
        assert!(report.clocked_checked > 10, "{report}");
        assert!(report.clean(), "{report}");
    }

    #[test]
    fn report_renders_as_json() {
        let mut report = FuzzReport {
            checked: 1,
            ..FuzzReport::default()
        };
        report.record(FuzzDivergence {
            seed: 9,
            oracle: "backend",
            model: "model x steps 1\n".into(),
            detail: "a \"quoted\" detail".into(),
        });
        let json = report.to_json();
        assert!(json.contains("\"divergence_count\": 1"), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(!report.clean());
    }

    #[test]
    fn divergence_display_names_seed_and_oracle() {
        let d = FuzzDivergence {
            seed: 3,
            oracle: "clocked",
            model: String::new(),
            detail: "boom".into(),
        };
        assert_eq!(d.to_string(), "seed 3: oracle `clocked` diverged: boom");
    }
}
