//! # clockless-kernel — a delta-cycle discrete-event simulation kernel
//!
//! This crate is the substrate of the `clockless` workspace: a small,
//! self-contained discrete-event simulator implementing the slice of VHDL
//! simulation semantics that the DATE 1998 paper *"Register Transfer Level
//! VHDL Models without Clocks"* builds on:
//!
//! * **Delta cycles.** Assignments are delta-delayed; successive simulation
//!   cycles at the same physical instant are counted explicitly. Clock-free
//!   RT models run entirely in delta time.
//! * **Resolved signals.** A signal driven by several processes combines
//!   its driver values with a user-defined resolution function — the
//!   mechanism the paper uses to detect resource conflicts on buses and
//!   functional-unit ports.
//! * **Processes.** Resumable state machines with VHDL-style waits:
//!   sensitivity lists, timed waits and termination.
//!
//! Physical time is also supported (femtosecond resolution) so the same
//! kernel runs the *clocked* translations and the asynchronous-handshake
//! baseline used for the paper's performance comparison.
//!
//! ## Example
//!
//! ```
//! use clockless_kernel::prelude::*;
//! use std::sync::Arc;
//!
//! // A wired-OR bus with two drivers.
//! let mut sim: Simulator<i64> = Simulator::new();
//! let bus = sim.resolved_signal("bus", 0, Arc::new(|d: &[i64]| d.iter().copied().max().unwrap_or(0)));
//! sim.process("d1", &[bus], move |ctx: &mut ProcessCtx<'_, i64>| {
//!     ctx.assign(bus, 3);
//!     Wait::Done
//! });
//! sim.process("d2", &[bus], move |ctx: &mut ProcessCtx<'_, i64>| {
//!     ctx.assign(bus, 7);
//!     Wait::Done
//! });
//! sim.initialize()?;
//! let stats = sim.run()?;
//! assert_eq!(*sim.value(bus), 7);
//! assert!(stats.delta_cycles >= 2);
//! # Ok::<(), clockless_kernel::KernelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod process;
pub mod signal;
pub mod sim;
pub mod time;
pub mod trace;

pub use error::KernelError;
pub use process::{Process, ProcessCtx, ProcessId, Wait};
pub use signal::{Resolver, SignalId};
pub use sim::{RunBudget, SimStats, SimValue, Simulator, StepOutcome};
pub use time::{Femtos, SimTime, NS, PS};
pub use trace::{Trace, TraceEvent};

/// Convenient glob import for kernel users.
pub mod prelude {
    pub use crate::error::KernelError;
    pub use crate::process::{Process, ProcessCtx, ProcessId, Wait};
    pub use crate::signal::{Resolver, SignalId};
    pub use crate::sim::{RunBudget, SimStats, SimValue, Simulator, StepOutcome};
    pub use crate::time::{Femtos, SimTime, NS, PS};
}
