//! Kernel-counter snapshots for the paper's experiments.
//!
//! `benches/kernel_snapshot.rs` re-runs the E2 (Fig. 2 timing) and E5
//! (modeling-style comparison) workloads, captures each run's kernel
//! counters together with its wall-clock time, and writes the result to
//! `BENCH_kernel.json` at the repository root — so scheduler changes
//! leave an auditable counter/perf trail in version control. Counters
//! are deterministic across machines; `wall_ns` is machine-local.

use std::fmt::Write as _;
use std::time::Instant;

use clockless_kernel::SimStats;

/// One workload's kernel counters and timing.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Experiment id from DESIGN.md's index (e.g. `"E2"`).
    pub experiment: &'static str,
    /// Workload id, `name/parameter` style.
    pub workload: String,
    /// Kernel counters of one complete run.
    pub stats: SimStats,
    /// Best-sample wall-clock nanoseconds per complete run.
    pub wall_ns: u64,
}

/// Runs `f` once for its counters, then times it — batches calibrated to
/// at least 10 ms, best of three samples — for nanoseconds per run.
pub fn measure(
    experiment: &'static str,
    workload: impl Into<String>,
    mut f: impl FnMut() -> SimStats,
) -> KernelRecord {
    let stats = f();
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if t.elapsed().as_nanos() >= 10_000_000 || iters >= 1 << 16 {
            break;
        }
        iters *= 4;
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    KernelRecord {
        experiment,
        workload: workload.into(),
        stats,
        wall_ns: best as u64,
    }
}

/// Renders records as the `BENCH_kernel.json` document (hand-rolled —
/// the bench crate, like the workspace, carries no serialization deps).
pub fn render(records: &[KernelRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"generated_by\": \"cargo bench --manifest-path crates/bench/Cargo.toml \
         --bench kernel_snapshot\",\n",
    );
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let s = &r.stats;
        let comma = if i + 1 == records.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"experiment\": \"{}\", \"workload\": \"{}\", \"wall_ns\": {}, \
             \"delta_cycles\": {}, \"process_activations\": {}, \"events\": {}, \
             \"driver_updates\": {}, \"time_advances\": {}, \"wake_filter_hits\": {}, \
             \"wake_filter_misses\": {}, \"peak_runnable\": {}, \
             \"peak_pending_updates\": {}}}{}",
            r.experiment,
            r.workload,
            r.wall_ns,
            s.delta_cycles,
            s.process_activations,
            s.events,
            s.driver_updates,
            s.time_advances,
            s.wake_filter_hits,
            s.wake_filter_misses,
            s.peak_runnable,
            s.peak_pending_updates,
            comma
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the snapshot to `BENCH_kernel.json` at the repository root and
/// returns the path written.
///
/// # Errors
///
/// Propagates the filesystem error if the root is not writable.
pub fn write_default(records: &[KernelRecord]) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernel.json");
    std::fs::write(&path, render(records))?;
    Ok(path.canonicalize().unwrap_or(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clockless_core::{RtModel, RtSimulation};

    #[test]
    fn measure_captures_counters_and_time() {
        let model = RtModel::new("empty", 5);
        let r = measure("E2", "controller_only/5", || {
            let mut sim = RtSimulation::new(&model).expect("elaborates");
            sim.run_to_completion().expect("runs").stats
        });
        assert_eq!(r.stats.delta_cycles, 31);
        assert!(r.wall_ns > 0);
    }

    #[test]
    fn render_is_valid_shaped_json() {
        let model = RtModel::new("empty", 2);
        let mut sim = RtSimulation::new(&model).expect("elaborates");
        let stats = sim.run_to_completion().expect("runs").stats;
        let json = render(&[KernelRecord {
            experiment: "E2",
            workload: "controller_only/2".into(),
            stats,
            wall_ns: 123,
        }]);
        assert!(json.contains("\"experiment\": \"E2\""));
        assert!(json.contains("\"wall_ns\": 123"));
        assert!(json.contains("\"delta_cycles\": 13"));
        assert!(json.contains("\"peak_pending_updates\""));
        assert!(json.ends_with("  ]\n}\n"));
    }
}
