//! Fleet run results: per-job outcomes (completed rows or quarantined
//! failures) plus merged totals.
//!
//! The JSON rendering is hand-rolled like every other machine-readable
//! surface in the workspace (no serialization crates; tier-1 resolves
//! offline). Two renderings exist: the default one is fully deterministic
//! — byte-identical for the same batch regardless of worker count or
//! machine — and the `timing` variant adds wall-clock fields for humans
//! and benches.
//!
//! Fault tolerance shows up here as the **quarantine**: a failed job
//! (build error, run error, panic, exhausted budget) does not abort the
//! batch; it becomes a [`JobFailure`] row carrying a [`FailureKind`], the
//! retry count, and the error text, while every other job's results stay
//! intact.

use std::fmt;
use std::fmt::Write as _;

use clockless_core::{ConflictReport, Step, Value};
use clockless_kernel::SimStats;

/// The result of one batch job that ran to quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The job's name from the spec.
    pub name: String,
    /// The resolved model's name.
    pub model: String,
    /// The model's `CS_MAX`.
    pub cs_max: Step,
    /// Transfer-tuple count.
    pub tuples: usize,
    /// Kernel counters of the completed run. `stats.retries` records how
    /// many times the fleet engine re-ran the job before it succeeded.
    pub stats: SimStats,
    /// Final register values, in declaration order.
    pub registers: Vec<(String, Value)>,
    /// Conflict diagnoses (every job runs traced, so localization to
    /// step + phase is always available).
    pub conflicts: ConflictReport,
    /// Wall-clock nanoseconds this job took on its worker
    /// (machine-local; excluded from the deterministic JSON rendering).
    pub wall_ns: u64,
    /// Value-checker verdict, when the batch ran with a
    /// [`FleetConfig::check`](crate::FleetConfig::check) program armed.
    /// Consumed structurally (fault campaigns classify it); deliberately
    /// **not** part of the fleet JSON, which is byte-identical with and
    /// without checking.
    pub check: Option<clockless_core::CheckReport>,
}

impl JobResult {
    /// Final value of a register by name.
    pub fn register(&self, name: &str) -> Option<Value> {
        self.registers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Why a quarantined job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FailureKind {
    /// The job's model could not be materialized (parse/build error).
    Build,
    /// The simulation itself failed (elaboration or kernel error).
    Run,
    /// The job panicked; the panic was caught at the worker fence.
    Panicked,
    /// The configured delta-cycle budget ran out before quiescence.
    DeltaBudget,
    /// The configured wall-clock budget ran out before quiescence.
    WallBudget,
}

impl FailureKind {
    /// Stable machine-readable status string, used in the JSON rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Build => "build-failed",
            FailureKind::Run => "run-failed",
            FailureKind::Panicked => "panicked",
            FailureKind::DeltaBudget => "delta-budget-exceeded",
            FailureKind::WallBudget => "wall-budget-exceeded",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A quarantined job: it failed (even after retries), but the batch
/// carried on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// The job's name from the spec.
    pub name: String,
    /// The failure classification.
    pub kind: FailureKind,
    /// The error text of the *last* attempt.
    pub error: String,
    /// How many re-executions were attempted beyond the first run.
    pub retries: u64,
    /// The kernel work the failed job still performed (deterministic:
    /// the exhausted budget for [`FailureKind::DeltaBudget`], zeros
    /// otherwise), with `retries` mirrored in — merged into
    /// [`FleetReport::totals`] so campaigns full of overflowing mutants
    /// don't report near-zero `delta_cycles`.
    pub stats: SimStats,
}

impl fmt::Display for JobFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}", self.name, self.kind)?;
        if self.retries > 0 {
            write!(f, " after {} retries", self.retries)?;
        }
        write!(f, "): {}", self.error)
    }
}

/// One slot of a fleet report: the job either completed or was
/// quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to quiescence (possibly with resource conflicts —
    /// those are diagnoses, not failures).
    Ok(Box<JobResult>),
    /// The job failed and was quarantined.
    Failed(JobFailure),
}

impl JobOutcome {
    /// The job's name, whichever way it went.
    pub fn name(&self) -> &str {
        match self {
            JobOutcome::Ok(r) => &r.name,
            JobOutcome::Failed(q) => &q.name,
        }
    }

    /// `true` when the job completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// The completed result, if any.
    pub fn result(&self) -> Option<&JobResult> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            JobOutcome::Failed(_) => None,
        }
    }

    /// The quarantined failure, if any.
    pub fn failure(&self) -> Option<&JobFailure> {
        match self {
            JobOutcome::Ok(_) => None,
            JobOutcome::Failed(q) => Some(q),
        }
    }
}

/// Aggregated results of a batch run.
///
/// # Examples
///
/// ```
/// use clockless_core::model::fig1_model;
/// use clockless_fleet::{run_batch, BatchSpec, JobSource, JobSpec};
///
/// let spec = BatchSpec {
///     jobs: vec![JobSpec::new("only", JobSource::Model(Box::new(fig1_model(1, 2))))],
/// };
/// let report = run_batch(&spec, 4)?;
/// assert_eq!(report.failed_jobs(), 0);
/// assert_eq!(report.conflicted_jobs(), 0);
/// assert!(report.job("only").is_some());
/// // The deterministic rendering carries no wall-clock noise…
/// assert!(!report.to_json(false).contains("wall_ns"));
/// // …the timing rendering does.
/// assert!(report.to_json(true).contains("wall_ns"));
/// # Ok::<(), clockless_fleet::FleetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetReport {
    /// Per-job outcomes, in spec order (independent of worker count).
    pub jobs: Vec<JobOutcome>,
    /// Every job's kernel counters merged with
    /// [`SimStats::merge`](clockless_kernel::SimStats::merge): counters
    /// sum, peaks take the maximum. Quarantined jobs contribute their
    /// partial [`JobFailure::stats`] (budget deltas burned, retries).
    pub totals: SimStats,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock nanoseconds for the whole batch (machine-local).
    pub elapsed_ns: u64,
}

impl FleetReport {
    /// Completed job results, in spec order.
    pub fn results(&self) -> impl Iterator<Item = &JobResult> {
        self.jobs.iter().filter_map(|j| j.result())
    }

    /// Quarantined failures, in spec order.
    pub fn quarantined(&self) -> impl Iterator<Item = &JobFailure> {
        self.jobs.iter().filter_map(|j| j.failure())
    }

    /// How many jobs were quarantined.
    pub fn failed_jobs(&self) -> usize {
        self.quarantined().count()
    }

    /// The completed result of a job, by spec name.
    pub fn job(&self, name: &str) -> Option<&JobResult> {
        self.results().find(|r| r.name == name)
    }

    /// How many completed jobs reported at least one resource conflict.
    pub fn conflicted_jobs(&self) -> usize {
        self.results().filter(|j| !j.conflicts.is_clean()).count()
    }

    /// Renders the report as JSON.
    ///
    /// With `timing == false` the output is deterministic: identical
    /// batches produce byte-identical documents regardless of worker
    /// count (the CLI test asserts `--jobs 1` vs `--jobs 4`) — including
    /// the `quarantine` section, which lists failures in spec order with
    /// their stable [`FailureKind::as_str`] status. With `timing == true`,
    /// machine-local wall-clock fields (`wall_ns`, `elapsed_ns`,
    /// `workers`) are included.
    pub fn to_json(&self, timing: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(
            out,
            "  \"fleet\": {{\"jobs\": {}, \"failed_jobs\": {}, \"conflicted_jobs\": {}",
            self.jobs.len(),
            self.failed_jobs(),
            self.conflicted_jobs()
        );
        if timing {
            let _ = write!(
                out,
                ", \"workers\": {}, \"elapsed_ns\": {}",
                self.workers, self.elapsed_ns
            );
        }
        out.push_str("},\n");
        let _ = writeln!(out, "  \"totals\": {},", stats_json(&self.totals));
        out.push_str("  \"jobs\": [\n");
        let ok_count = self.jobs.len() - self.failed_jobs();
        for (i, j) in self.results().enumerate() {
            let comma = if i + 1 == ok_count { "" } else { "," };
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"model\": \"{}\", \"cs_max\": {}, \"tuples\": {},\n     \
                 \"kernel\": {},\n     \"registers\": [",
                json_escape(&j.name),
                json_escape(&j.model),
                j.cs_max,
                j.tuples,
                stats_json(&j.stats)
            );
            for (k, (name, value)) in j.registers.iter().enumerate() {
                let comma = if k + 1 == j.registers.len() { "" } else { ", " };
                let _ = write!(
                    out,
                    "{{\"name\": \"{}\", \"value\": \"{}\"}}{}",
                    json_escape(name),
                    value,
                    comma
                );
            }
            out.push_str("],\n     \"conflicts\": [");
            for (k, c) in j.conflicts.conflicts.iter().enumerate() {
                let comma = if k + 1 == j.conflicts.conflicts.len() {
                    ""
                } else {
                    ", "
                };
                let _ = write!(out, "\"{}\"{}", json_escape(&c.to_string()), comma);
            }
            out.push(']');
            if timing {
                let _ = write!(out, ",\n     \"wall_ns\": {}", j.wall_ns);
            }
            let _ = writeln!(out, "}}{comma}");
        }
        out.push_str("  ],\n  \"quarantine\": [\n");
        let failed = self.failed_jobs();
        for (i, q) in self.quarantined().enumerate() {
            let comma = if i + 1 == failed { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"status\": \"{}\", \"retries\": {}, \"error\": \"{}\"}}{}",
                json_escape(&q.name),
                q.kind.as_str(),
                q.retries,
                json_escape(&q.error),
                comma
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fleet: {} jobs ({} quarantined) on {} workers in {:.3} ms — totals: {}",
            self.jobs.len(),
            self.failed_jobs(),
            self.workers,
            self.elapsed_ns as f64 / 1e6,
            self.totals
        )?;
        for j in self.results() {
            writeln!(
                f,
                "  {:<20} {:<20} {:>6} steps {:>5} tuples {:>9} deltas  {}",
                j.name,
                j.model,
                j.cs_max,
                j.tuples,
                j.stats.delta_cycles,
                if j.conflicts.is_clean() {
                    "clean".to_string()
                } else {
                    format!("{} conflict site(s)", j.conflicts.conflicts.len())
                }
            )?;
        }
        for q in self.quarantined() {
            writeln!(f, "  quarantined: {q}")?;
        }
        Ok(())
    }
}

/// Renders [`SimStats`] as a flat JSON object (shared by totals and
/// per-job rows) — the workspace-wide rendering from
/// [`clockless_core::json`].
fn stats_json(s: &SimStats) -> String {
    clockless_core::json::sim_stats(s)
}

/// Escapes a string for inclusion in a JSON document (the workspace-wide
/// escaper from [`clockless_core::json`]).
fn json_escape(s: &str) -> String {
    clockless_core::json::escape(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny\u{1}"), "x\\ny\\u0001");
    }

    #[test]
    fn stats_json_is_flat_and_complete() {
        let s = SimStats {
            delta_cycles: 1,
            process_activations: 2,
            events: 3,
            driver_updates: 4,
            time_advances: 5,
            wake_filter_hits: 6,
            wake_filter_misses: 7,
            peak_runnable: 8,
            peak_pending_updates: 9,
            injected_faults: 10,
            retries: 11,
        };
        let j = stats_json(&s);
        for needle in [
            "\"delta_cycles\": 1",
            "\"process_activations\": 2",
            "\"events\": 3",
            "\"driver_updates\": 4",
            "\"time_advances\": 5",
            "\"wake_filter_hits\": 6",
            "\"wake_filter_misses\": 7",
            "\"peak_runnable\": 8",
            "\"peak_pending_updates\": 9",
            "\"injected_faults\": 10",
            "\"retries\": 11",
        ] {
            assert!(j.contains(needle), "{j} missing {needle}");
        }
    }

    #[test]
    fn zeroed_stats_serialize_every_counter_explicitly() {
        // A quiet job must still emit all eleven counters as literal
        // zeros — downstream diffing depends on a value-independent
        // key set.
        let j = stats_json(&SimStats::default());
        for key in [
            "delta_cycles",
            "process_activations",
            "events",
            "driver_updates",
            "time_advances",
            "wake_filter_hits",
            "wake_filter_misses",
            "peak_runnable",
            "peak_pending_updates",
            "injected_faults",
            "retries",
        ] {
            assert!(
                j.contains(&format!("\"{key}\": 0")),
                "{j} missing zeroed {key}"
            );
        }
    }

    #[test]
    fn failure_kind_strings_are_stable() {
        let kinds = [
            (FailureKind::Build, "build-failed"),
            (FailureKind::Run, "run-failed"),
            (FailureKind::Panicked, "panicked"),
            (FailureKind::DeltaBudget, "delta-budget-exceeded"),
            (FailureKind::WallBudget, "wall-budget-exceeded"),
        ];
        for (kind, text) in kinds {
            assert_eq!(kind.as_str(), text);
            assert_eq!(kind.to_string(), text);
        }
    }

    #[test]
    fn job_failure_display_mentions_retries_only_when_retried() {
        let mut q = JobFailure {
            name: "boom".into(),
            kind: FailureKind::Panicked,
            error: "deliberate".into(),
            retries: 0,
            stats: SimStats::default(),
        };
        assert_eq!(q.to_string(), "boom (panicked): deliberate");
        q.retries = 2;
        assert_eq!(q.to_string(), "boom (panicked after 2 retries): deliberate");
    }
}
