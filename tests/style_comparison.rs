//! Experiment E5 (assertion-level): the modeling-style cost comparison
//! behind §2.7's speed claim. The bench harness measures wall time; these
//! tests pin the *shape* in deterministic kernel counters.

use clockless::clocked::{ClockScheme, ClockedDesign, ClockedSimulation, HandshakeSim};
use clockless::core::prelude::*;
use clockless::core::ElaborateOptions;
use clockless::kernel::NS;

/// `width` independent adder transfers in each of `depth` step pairs.
fn dense_model(width: usize, depth: u32) -> RtModel {
    let mut m = RtModel::new("dense", depth * 2);
    for i in 0..width {
        m.add_register_init(format!("A{i}"), Value::Num(i as i64 + 1))
            .unwrap();
        m.add_register_init(format!("B{i}"), Value::Num(2 * i as i64 + 1))
            .unwrap();
        m.add_bus(format!("X{i}")).unwrap();
        m.add_bus(format!("Y{i}")).unwrap();
        m.add_module(ModuleDecl::single(
            format!("ADD{i}"),
            Op::Add,
            ModuleTiming::Pipelined { latency: 1 },
        ))
        .unwrap();
    }
    for d in 0..depth {
        let read = 2 * d + 1;
        for i in 0..width {
            // A_i := A_i + B_i, repeatedly.
            m.add_transfer(
                TransferTuple::new(read, format!("ADD{i}"))
                    .src_a(format!("A{i}"), format!("X{i}"))
                    .src_b(format!("B{i}"), format!("Y{i}"))
                    .write(read + 1, format!("X{i}"), format!("A{i}")),
            )
            .unwrap();
        }
    }
    m
}

#[test]
fn all_styles_compute_the_same_result() {
    let model = dense_model(6, 4);
    let mut cf = RtSimulation::new(&model).unwrap();
    let cf_sum = cf.run_to_completion().unwrap();

    let design = ClockedDesign::translate(&model, ClockScheme::default()).unwrap();
    let mut ck = ClockedSimulation::new(&design, false).unwrap();
    ck.run_to_completion().unwrap();

    let mut hs = HandshakeSim::new(&model).unwrap();
    hs.run_to_completion().unwrap();

    for i in 0..6i64 {
        // A_i = (i+1) + 4 * (2i+1)
        let expected = Value::Num((i + 1) + 4 * (2 * i + 1));
        let name = format!("A{i}");
        assert_eq!(cf_sum.register(&name), Some(expected));
        assert_eq!(ck.register_value(&name), Some(expected));
        assert_eq!(hs.register_value(&name), Some(expected));
    }
}

#[test]
fn clock_free_deltas_scale_with_steps_not_transfers() {
    // Same step count, increasing width: the clock-free delta count is
    // constant.
    let mut deltas = Vec::new();
    for width in [1usize, 4, 16] {
        let model = dense_model(width, 3);
        let mut sim = RtSimulation::new(&model).unwrap();
        deltas.push(sim.run_to_completion().unwrap().stats.delta_cycles);
    }
    assert_eq!(deltas[0], deltas[1]);
    assert_eq!(deltas[1], deltas[2]);
}

#[test]
fn handshake_deltas_scale_with_transfers() {
    let mut deltas = Vec::new();
    for width in [1usize, 4, 8] {
        let model = dense_model(width, 2);
        let mut hs = HandshakeSim::new(&model).unwrap();
        deltas.push(hs.run_to_completion().unwrap().delta_cycles);
    }
    // Serialized handshakes: width 8 costs much more than width 1.
    assert!(deltas[2] > 4 * deltas[0], "deltas: {deltas:?}");
    // And far more than the clock-free rendering of the same model.
    let model = dense_model(8, 2);
    let mut cf = RtSimulation::new(&model).unwrap();
    let cf_deltas = cf.run_to_completion().unwrap().stats.delta_cycles;
    assert!(
        deltas[2] > 3 * cf_deltas,
        "handshake {} vs clock-free {cf_deltas}",
        deltas[2]
    );
}

#[test]
fn clocked_needs_physical_time_clock_free_does_not() {
    let model = dense_model(4, 4);
    let mut cf = RtSimulation::new(&model).unwrap();
    let cf_sum = cf.run_to_completion().unwrap();
    assert_eq!(cf_sum.stats.time_advances, 0);

    let design =
        ClockedDesign::translate(&model, ClockScheme::OneCyclePerStep { period_fs: 10 * NS })
            .unwrap();
    let mut ck = ClockedSimulation::new(&design, false).unwrap();
    let ck_stats = ck.run_to_completion().unwrap();
    assert!(ck_stats.time_advances > 0);
    assert!(ck.elapsed_fs() >= 8 * 10 * NS);
    // The clock itself generates events the abstract model has no
    // counterpart for: two transitions per cycle plus the step counter.
    let clock_events = 2 * (design.total_cycles() - 1);
    assert!(
        ck_stats.events >= clock_events,
        "clocked events {} < clock transitions {clock_events}",
        ck_stats.events
    );
}

/// Ablation (DESIGN.md §6): literal VHDL `wait until` semantics keep every
/// completed transfer process waking on each CS/PH event. The retire
/// optimization removes exactly that overhead without changing results.
#[test]
fn faithful_wakeups_cost_more_activations_same_result() {
    let model = dense_model(6, 6);

    let mut fast = RtSimulation::new(&model).unwrap();
    let fast_sum = fast.run_to_completion().unwrap();

    let mut faithful = RtSimulation::with_options(
        &model,
        ElaborateOptions {
            trace: false,
            faithful_trans_wakeups: true,
        },
    )
    .unwrap();
    let faithful_sum = faithful.run_to_completion().unwrap();

    assert_eq!(fast.registers(), faithful.registers());
    assert_eq!(fast_sum.stats.delta_cycles, faithful_sum.stats.delta_cycles);
    assert!(
        faithful_sum.stats.process_activations > fast_sum.stats.process_activations,
        "faithful {} vs retired {}",
        faithful_sum.stats.process_activations,
        fast_sum.stats.process_activations
    );
}
