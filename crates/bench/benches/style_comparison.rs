//! Experiment E5 (§2.7 speed claim): "Execution is very fast, because we
//! need not deal with asynchronous handshake." The same schedules are
//! executed as (a) the clock-free control-step model, (b) the 4-phase
//! handshake network, (c) the clocked translation — wall time via the
//! in-tree harness, kernel counters in the report. The expected shape:
//! the clock-free style's cost scales with steps, the handshake style's
//! with (serialized) transfers; dense schedules make the gap grow with
//! width. `kernel_snapshot` records the same workloads' counters into
//! `BENCH_kernel.json`.

use clockless_bench::dense_model;
use clockless_bench::harness::Harness;
use clockless_clocked::{ClockScheme, ClockedDesign, ClockedSimulation, HandshakeSim};
use clockless_core::{ElaborateOptions, RtSimulation};

fn report() {
    eprintln!("--- E5: modeling-style cost comparison (depth 8) ---");
    eprintln!(
        "{:>6} {:>22} {:>22} {:>22}",
        "width", "clock-free (δ/act/ev)", "handshake (δ/act/ev)", "clocked (δ/act/ev)"
    );
    for width in [1usize, 4, 16] {
        let model = dense_model(width, 8);

        let mut cf = RtSimulation::new(&model).expect("elaborates");
        let cf_stats = cf.run_to_completion().expect("runs").stats;

        let mut hs = HandshakeSim::new(&model).expect("builds");
        let hs_stats = hs.run_to_completion().expect("runs");

        let design = ClockedDesign::translate(&model, ClockScheme::default()).expect("translates");
        let mut ck = ClockedSimulation::new(&design, false).expect("elaborates");
        let ck_stats = ck.run_to_completion().expect("runs");

        eprintln!(
            "{width:>6} {:>22} {:>22} {:>22}",
            format!(
                "{}/{}/{}",
                cf_stats.delta_cycles, cf_stats.process_activations, cf_stats.events
            ),
            format!(
                "{}/{}/{}",
                hs_stats.delta_cycles, hs_stats.process_activations, hs_stats.events
            ),
            format!(
                "{}/{}/{}",
                ck_stats.delta_cycles, ck_stats.process_activations, ck_stats.events
            ),
        );
        // Results agree across styles.
        assert_eq!(cf.registers(), hs.registers());
        assert_eq!(cf.registers(), ck.registers());
    }
}

fn main() {
    report();
    let mut h = Harness::new();
    {
        let mut g = h.group("style_comparison");

        // Timings include elaboration (the harness has no excluded-setup
        // mode); the `*_elaborate` rows below are reported separately so
        // the event-loop cost of each style can be read by subtraction.
        for width in [1usize, 4, 16] {
            let model = dense_model(width, 8);

            g.bench(format!("clock_free/{width}"), || {
                let mut sim = RtSimulation::new(&model).expect("elaborates");
                sim.run_to_completion().expect("runs")
            });

            g.bench(format!("clock_free_faithful_wakeups/{width}"), || {
                let mut sim = RtSimulation::with_options(
                    &model,
                    ElaborateOptions {
                        trace: false,
                        faithful_trans_wakeups: true,
                    },
                )
                .expect("elaborates");
                sim.run_to_completion().expect("runs")
            });

            g.bench(format!("handshake/{width}"), || {
                let mut sim = HandshakeSim::new(&model).expect("builds");
                sim.run_to_completion().expect("runs")
            });

            let design =
                ClockedDesign::translate(&model, ClockScheme::default()).expect("translates");
            g.bench(format!("clocked/{width}"), || {
                let mut sim = ClockedSimulation::new(&design, false).expect("elaborates");
                sim.run_to_completion().expect("runs")
            });

            // Elaboration cost, reported separately.
            g.bench(format!("clock_free_elaborate/{width}"), || {
                RtSimulation::new(&model).expect("elaborates")
            });
            g.bench(format!("handshake_elaborate/{width}"), || {
                HandshakeSim::new(&model).expect("builds")
            });
        }
    }
    h.print_table();
}
