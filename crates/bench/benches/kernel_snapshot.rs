//! Writes `BENCH_kernel.json` at the repository root: kernel counters
//! plus wall-clock time for the E2 (Fig. 2 timing) and E5 (modeling-style
//! comparison) workloads. Run after scheduler changes and commit the
//! result — the counters are deterministic, so a diff in anything but
//! `wall_ns` means observable kernel behavior changed.

use clockless_bench::dense_model;
use clockless_bench::snapshot::{measure, write_default, KernelRecord};
use clockless_clocked::{ClockScheme, ClockedDesign, ClockedSimulation, HandshakeSim};
use clockless_core::{ElaborateOptions, RtModel, RtSimulation, PHASES_PER_STEP};

fn main() {
    let mut records: Vec<KernelRecord> = Vec::new();

    // E2: pure controller sweep — the paper's CS_MAX × 6 claim.
    for cs_max in [10u32, 100, 1_000, 10_000] {
        let r = measure("E2", format!("controller_only/{cs_max}"), || {
            let model = RtModel::new("empty", cs_max);
            let mut sim = RtSimulation::new(&model).expect("elaborates");
            sim.run_to_completion().expect("runs").stats
        });
        assert_eq!(r.stats.delta_cycles, 1 + PHASES_PER_STEP * cs_max as u64);
        records.push(r);
    }

    // E2: same steps, increasing datapath activity.
    for width in [1usize, 4, 16] {
        let model = dense_model(width, 50);
        records.push(measure("E2", format!("dense_width/{width}"), || {
            let mut sim = RtSimulation::new(&model).expect("elaborates");
            sim.run_to_completion().expect("runs").stats
        }));
    }

    // E5: the dense schedule (depth 8) in each modeling style.
    for width in [1usize, 4, 16] {
        let model = dense_model(width, 8);
        records.push(measure("E5", format!("clock_free/{width}"), || {
            let mut sim = RtSimulation::new(&model).expect("elaborates");
            sim.run_to_completion().expect("runs").stats
        }));
        records.push(measure(
            "E5",
            format!("clock_free_faithful_wakeups/{width}"),
            || {
                let mut sim = RtSimulation::with_options(
                    &model,
                    ElaborateOptions {
                        trace: false,
                        faithful_trans_wakeups: true,
                    },
                )
                .expect("elaborates");
                sim.run_to_completion().expect("runs").stats
            },
        ));
        records.push(measure("E5", format!("handshake/{width}"), || {
            let mut sim = HandshakeSim::new(&model).expect("builds");
            sim.run_to_completion().expect("runs")
        }));
        let design = ClockedDesign::translate(&model, ClockScheme::default()).expect("translates");
        records.push(measure("E5", format!("clocked/{width}"), || {
            let mut sim = ClockedSimulation::new(&design, false).expect("elaborates");
            sim.run_to_completion().expect("runs")
        }));
    }

    let path = write_default(&records).expect("writes snapshot");
    eprintln!(
        "kernel snapshot: {} records written to {}",
        records.len(),
        path.display()
    );
}
