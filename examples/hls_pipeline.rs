//! High-level synthesis onto the clock-free subset (§4).
//!
//! Takes the classic differential-equation benchmark, schedules it under
//! several resource budgets, emits the clock-free RT model for each,
//! simulates it "at a high level before the next synthesis steps", and
//! runs the automatic proving procedure against the dataflow graph.
//!
//! Run with: `cargo run --example hls_pipeline`

use std::collections::HashMap;

use clockless::core::prelude::*;
use clockless::hls::prelude::*;
use clockless::verify::verify_synthesis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = diffeq();
    println!(
        "workload: HAL differential-equation benchmark ({} operations, {} inputs)",
        g.len(),
        g.inputs().len()
    );
    let inputs: HashMap<&str, i64> = [("x", 1), ("y", 2), ("u", 3), ("dx", 1)]
        .into_iter()
        .collect();
    let reference = g.evaluate(&inputs)?;
    println!("algorithmic reference: {reference:?}\n");

    println!("resource budget           steps  regs  buses  verified");
    for (label, muls, alus) in [
        ("2 MUL + 2 ALU", 2usize, 2usize),
        ("1 MUL + 1 ALU (minimal)", 1, 1),
        ("3 MUL + 2 ALU (greedy)", 3, 2),
    ] {
        let resources = ResourceSet::new([
            ResourceClass::new(
                "MUL",
                [Op::Mul],
                ModuleTiming::Pipelined { latency: 2 },
                muls,
            ),
            ResourceClass::new(
                "ALU",
                [Op::Add, Op::Sub],
                ModuleTiming::Pipelined { latency: 1 },
                alus,
            ),
        ]);
        let syn = synthesize(&g, &resources, &inputs)?;

        // Simulate the emitted clock-free model.
        let mut sim = RtSimulation::new(&syn.model)?;
        let summary = sim.run_to_completion()?;
        for (out, reg) in &syn.output_registers {
            assert_eq!(
                summary.register(reg),
                Some(Value::Num(reference[out])),
                "output {out}"
            );
        }

        // The automatic proving procedure: symbolic + normalization.
        let verification = verify_synthesis(&g, &syn, 16)?;

        println!(
            "{label:<25} {:>5} {:>5} {:>6}  {}",
            syn.model.cs_max(),
            syn.model.registers().len(),
            syn.model.buses().len(),
            if verification.fully_proven() {
                "proven"
            } else if verification.passed() {
                "tested"
            } else {
                "REFUTED"
            }
        );
        assert!(verification.fully_proven());
    }

    println!("\nschedule detail for the minimal budget:");
    let resources = ResourceSet::new([
        ResourceClass::new("MUL", [Op::Mul], ModuleTiming::Pipelined { latency: 2 }, 1),
        ResourceClass::new(
            "ALU",
            [Op::Add, Op::Sub],
            ModuleTiming::Pipelined { latency: 1 },
            1,
        ),
    ]);
    let syn = synthesize(&g, &resources, &inputs)?;
    for t in syn.model.tuples() {
        println!("  {t}");
    }
    println!("\nOK: scheduling/allocation results simulate and verify at the abstract RT level.");
    Ok(())
}
