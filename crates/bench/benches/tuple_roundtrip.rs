//! Experiment E7 (§2.7 formal semantics): the bidirectional tuple ↔
//! process mapping. The bench measures expansion, reconstruction and the
//! full round trip over growing models; the report confirms identity.

use clockless_bench::dense_model;
use clockless_core::TransferSpec;
use clockless_verify::{merge_partials, reconstruct_partials, roundtrip_check};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn report() {
    eprintln!("--- E7: tuple <-> process round trip ---");
    eprintln!(
        "{:>8} {:>10} {:>10} {:>10}",
        "tuples", "processes", "partials", "roundtrip"
    );
    for width in [2usize, 8, 32] {
        let model = dense_model(width, 8);
        let specs: Vec<TransferSpec> = model.tuples().iter().flat_map(|t| t.expand()).collect();
        let partials = reconstruct_partials(&specs).expect("reconstructs");
        let merged = merge_partials(partials.clone(), &model).expect("merges");
        let identity = roundtrip_check(&model).is_ok();
        eprintln!(
            "{:>8} {:>10} {:>10} {:>10}",
            model.tuples().len(),
            specs.len(),
            partials.len(),
            identity
        );
        assert!(identity);
        assert_eq!(merged.len(), model.tuples().len());
    }
}

fn bench(c: &mut Criterion) {
    report();
    let mut g = c.benchmark_group("tuple_roundtrip");

    for width in [2usize, 8, 32] {
        let model = dense_model(width, 8);
        let specs: Vec<TransferSpec> = model.tuples().iter().flat_map(|t| t.expand()).collect();

        g.bench_with_input(BenchmarkId::new("expand", width), &model, |b, m| {
            b.iter(|| {
                m.tuples()
                    .iter()
                    .flat_map(|t| t.expand())
                    .collect::<Vec<_>>()
            })
        });

        g.bench_with_input(BenchmarkId::new("reconstruct", width), &specs, |b, s| {
            b.iter(|| reconstruct_partials(s).expect("reconstructs"))
        });

        g.bench_with_input(BenchmarkId::new("full_roundtrip", width), &model, |b, m| {
            b.iter(|| roundtrip_check(m).expect("identity"))
        });

        // The full source-level loop: model -> VHDL text -> model.
        g.bench_with_input(BenchmarkId::new("vhdl_roundtrip", width), &model, |b, m| {
            b.iter(|| {
                let text = clockless_core::vhdl::emit_vhdl(m).expect("emits");
                clockless_verify::model_from_vhdl(&text).expect("imports")
            })
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
